// Edge cases of the fetch scheduler's background (speculative) class and
// the aging bound: strict FIFO at a zero bound, cancellation of pending
// speculative work when demand queues, demand absorbing an in-flight
// speculative cycle, and the never-evict-demanded invariant.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/mech/geometry.h"
#include "src/olfs/olfs.h"
#include "src/sim/join.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

// One-bay rig: speculative work and demand contend for a single drive set,
// which is where the background class's yielding rules are observable.
class FetchSpeculativeTest : public ::testing::Test {
 protected:
  FetchSpeculativeTest() {
    SystemConfig config = TestSystemConfig();
    config.drive_sets = 1;
    system_ = std::make_unique<RosSystem>(sim_, config);
  }

  void Init(OlfsParams params) {
    params.disc_capacity_override = 16 * kMiB;
    params.read_cache_bytes = 0;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  // Creates `files` files on one fresh array rooted at `root` and drains
  // the burn, so each call claims the next tray.
  void StageArray(const std::string& root, int files, std::uint64_t seed) {
    for (int i = 0; i < files; ++i) {
      ROS_CHECK(sim_.RunUntilComplete(
                    olfs_->Create(root + "/f" + std::to_string(i),
                                  RandomBytes(8 * kKiB, seed + i),
                                  10 * kMiB))
                    .ok());
    }
    ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  }

  Status ReadOk(const std::string& path) {
    auto data = sim_.RunUntilComplete(olfs_->Read(path, 0, 8 * kKiB));
    return data.status();
  }

  ~FetchSpeculativeTest() override { sim_.Shutdown(); }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

// fetch_aging_bound = 0: every queued request is immediately past the
// bound, so every dispatch is a strict-FIFO promotion and completions
// follow arrival order exactly.
TEST_F(FetchSpeculativeTest, ZeroAgingBoundIsStrictFifo) {
  OlfsParams params;
  params.fetch_aging_bound = 0;
  Init(params);
  StageArray("/a", 1, 100);
  StageArray("/b", 1, 200);
  StageArray("/c", 1, 300);

  std::vector<int> completion_order;
  std::vector<sim::Task<Status>> reads;
  const char* order[] = {"/c/f0", "/a/f0", "/b/f0"};
  for (int i = 0; i < 3; ++i) {
    reads.push_back([](Olfs* o, std::string p, int slot,
                       std::vector<int>* done) -> sim::Task<Status> {
      auto data = co_await o->Read(p, 0, 8 * kKiB);
      done->push_back(slot);
      co_return data.status();
    }(olfs_.get(), order[i], i, &completion_order));
    // Pin arrival order: each reader reaches its queue before the next
    // is spawned.
    sim_.RunFor(sim::Millis(1));
  }
  ASSERT_TRUE(
      sim_.RunUntilComplete(sim::AllOk(sim_, std::move(reads))).ok());

  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2}));
  const FetchSchedulerStats& stats = olfs_->fetch_scheduler()->stats();
  // All three loads were dispatched through the aged (strict FIFO) path.
  EXPECT_EQ(stats.loads, 3u);
  EXPECT_EQ(stats.aged_dispatches, 3u);
}

// A speculative load still waiting in the pending queue is canceled the
// moment demand queues: it must never reach the dispatch log.
TEST_F(FetchSpeculativeTest, QueuedSpeculativeCanceledByDemand) {
  Init(OlfsParams{});
  StageArray("/a", 1, 400);
  StageArray("/b", 1, 500);
  StageArray("/c", 1, 450);

  // Learn C's tray, end with A resident, then let B's demand load take
  // the only bay.
  ASSERT_TRUE(ReadOk("/c/f0").ok());
  ASSERT_TRUE(ReadOk("/a/f0").ok());
  const auto& log = olfs_->fetch_scheduler()->dispatch_log();
  ASSERT_EQ(log.size(), 2u);
  const int tray_c = log[0].first;

  Status b_status = UnavailableError("still running");
  sim_.Spawn([](Olfs* o, Status* out) -> sim::Task<void> {
    auto data = co_await o->Read("/b/f0", 0, 8 * kKiB);
    *out = data.status();
  }(olfs_.get(), &b_status));
  sim_.RunFor(Seconds(2));  // B's demand load cycle is in flight

  // Speculation on the cold C parks in the pending queue (the only bay
  // is mid-load), then a fresh demand read of A cancels it.
  olfs_->fetch_scheduler()->EnqueueSpeculative(
      mech::TrayAddress::FromIndex(tray_c));
  sim_.RunFor(sim::Millis(1));
  const FetchSchedulerStats& stats = olfs_->fetch_scheduler()->stats();
  EXPECT_EQ(stats.speculative_enqueued, 1u);
  EXPECT_EQ(stats.speculative_loads, 0u);

  ASSERT_TRUE(ReadOk("/a/f0").ok());
  sim_.RunFor(Seconds(300));
  EXPECT_TRUE(b_status.ok()) << b_status.ToString();
  EXPECT_EQ(stats.speculative_canceled, 1u);
  EXPECT_EQ(stats.speculative_loads, 0u);
  EXPECT_EQ(stats.speculative_demand_evictions, 0u);
  // The canceled tray never reached the dispatch log: only the four
  // demand loads (C, A, B, A again) did.
  EXPECT_EQ(log.size(), 4u);
}

// Demand arriving while a speculative load cycle is mid-flight joins that
// cycle and is absorbed exactly like a batched demand load.
TEST_F(FetchSpeculativeTest, DemandAbsorbsInFlightSpeculativeLoad) {
  Init(OlfsParams{});
  StageArray("/a", 1, 600);
  StageArray("/b", 1, 700);

  // Learn both tray indices, ending with A resident.
  ASSERT_TRUE(ReadOk("/a/f0").ok());
  ASSERT_TRUE(ReadOk("/b/f0").ok());
  ASSERT_TRUE(ReadOk("/a/f0").ok());
  const auto& log = olfs_->fetch_scheduler()->dispatch_log();
  ASSERT_EQ(log.size(), 3u);
  const int tray_b = log[1].first;

  // With the bays demand-idle the speculative load starts (evicting the
  // idle A), and the demand read that arrives mid-cycle rides it home.
  olfs_->fetch_scheduler()->EnqueueSpeculative(
      mech::TrayAddress::FromIndex(tray_b));
  sim_.RunFor(Seconds(5));
  const FetchSchedulerStats& stats = olfs_->fetch_scheduler()->stats();
  ASSERT_EQ(stats.speculative_loads, 1u);

  ASSERT_TRUE(ReadOk("/b/f0").ok());
  EXPECT_EQ(stats.speculative_useful, 1u);
  EXPECT_EQ(stats.speculative_canceled, 0u);
  EXPECT_EQ(stats.speculative_demand_evictions, 0u);
  // The demand read consumed the speculative cycle: no fourth demand load.
  EXPECT_EQ(stats.loads, 4u);
}

// The background class never steals a bay from demand: with readers
// queued on the resident array, a speculative request for another tray
// waits until the demand queue drains, then takes the bay cleanly.
TEST_F(FetchSpeculativeTest, SpeculativeNeverEvictsTrayWithQueuedDemand) {
  Init(OlfsParams{});
  StageArray("/a", 3, 800);
  StageArray("/b", 1, 900);

  ASSERT_TRUE(ReadOk("/a/f0").ok());
  ASSERT_TRUE(ReadOk("/b/f0").ok());
  ASSERT_TRUE(ReadOk("/a/f0").ok());  // A resident again; B's tray known
  const auto& log = olfs_->fetch_scheduler()->dispatch_log();
  ASSERT_EQ(log.size(), 3u);
  const int tray_a = log[0].first;
  const int tray_b = log[1].first;

  // Two readers keep demand on the resident A (one claims the bay, one
  // queues behind it for a handoff).
  Status a_status[2] = {UnavailableError("running"),
                        UnavailableError("running")};
  for (int i = 0; i < 2; ++i) {
    sim_.Spawn([](Olfs* o, int idx, Status* out) -> sim::Task<void> {
      auto data = co_await o->Read("/a/f" + std::to_string(idx + 1), 0,
                                   8 * kKiB);
      *out = data.status();
    }(olfs_.get(), i, &a_status[i]));
  }
  // Run until the readers' metadata path reaches the scheduler: one
  // claims the parked bay, the other is queued demand behind it.
  for (int i = 0; i < 1000 && olfs_->fetch_scheduler()->queue_depth() == 0;
       ++i) {
    sim_.RunFor(sim::Millis(1));
  }
  ASSERT_GT(olfs_->fetch_scheduler()->queue_depth(), 0);

  olfs_->fetch_scheduler()->EnqueueSpeculative(
      mech::TrayAddress::FromIndex(tray_b));
  sim_.RunFor(Seconds(300));
  EXPECT_TRUE(a_status[0].ok()) << a_status[0].ToString();
  EXPECT_TRUE(a_status[1].ok()) << a_status[1].ToString();

  const FetchSchedulerStats& stats = olfs_->fetch_scheduler()->stats();
  EXPECT_EQ(stats.speculative_demand_evictions, 0u);
  EXPECT_GE(stats.handoffs, 1u);  // demand drained through bay handoffs
  // The speculative load ran only after demand finished with the bay, so
  // it is the final dispatch — A was never reloaded behind it.
  EXPECT_EQ(stats.speculative_loads, 1u);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.back().first, tray_b);
  EXPECT_EQ(log[2].first, tray_a);
}

}  // namespace
}  // namespace ros::olfs
