// Unit tests for the immutable sorted segment files of the log-structured
// MV (DESIGN.md §5i): build/parse round trips, corruption sweeps, file
// naming, and the merge used by compaction.
#include "src/olfs/mv_segment.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ros::olfs {
namespace {

using mvlog::Record;
using mvlog::RecordType;

std::vector<Record> SortedRecords() {
  return {
      {RecordType::kPut, "i/docs/a", "{\"entries\":[]}"},
      {RecordType::kPut, "i/docs/b", "bee"},
      {RecordType::kRemove, "i/docs/c", ""},
      {RecordType::kPutState, "s/burn/cursor", "{\"at\":7}"},
  };
}

std::vector<std::uint8_t> BuildSegment(std::uint64_t rank, std::uint64_t id,
                                       const std::vector<Record>& records) {
  mvseg::SegmentBuilder builder(rank, id);
  for (const Record& record : records) {
    builder.Add(record);
  }
  return std::move(builder).Finish();
}

struct Parsed {
  Status status;
  mvseg::SegmentHeader header;
  std::vector<Record> records;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> refs;
};

Parsed Parse(const std::vector<std::uint8_t>& bytes) {
  Parsed out;
  out.status = mvseg::ParseSegment(
      bytes, &out.header,
      [&out](Record record, std::uint64_t offset, std::uint32_t length) {
        out.records.push_back(std::move(record));
        out.refs.push_back({offset, length});
      });
  return out;
}

TEST(MvSegment, BuildParseRoundTrip) {
  const std::vector<Record> want = SortedRecords();
  const std::vector<std::uint8_t> bytes = BuildSegment(3, 12, want);
  const Parsed got = Parse(bytes);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ(got.header.rank, 3u);
  EXPECT_EQ(got.header.id, 12u);
  EXPECT_EQ(got.header.count, want.size());
  EXPECT_EQ(got.records, want);
}

TEST(MvSegment, RefsPointAtDecodableFrames) {
  const std::vector<Record> want = SortedRecords();
  mvseg::SegmentBuilder builder(1, 1);
  for (const Record& record : want) {
    builder.Add(record);
  }
  const auto refs = builder.refs();
  const std::vector<std::uint8_t> bytes = std::move(builder).Finish();
  ASSERT_EQ(refs.size(), want.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    // Each ref must decode, standalone, to exactly the added record —
    // this is the contract the keydir's point reads rely on.
    std::size_t offset = refs[i].first;
    auto record = mvlog::DecodeRecord(bytes, &offset);
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    EXPECT_EQ(*record, want[i]);
    EXPECT_EQ(offset - refs[i].first, refs[i].second);
  }
}

TEST(MvSegment, EmptySegmentIsLegal) {
  const std::vector<std::uint8_t> bytes = BuildSegment(1, 1, {});
  const Parsed got = Parse(bytes);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ(got.header.count, 0u);
  EXPECT_TRUE(got.records.empty());
}

TEST(MvSegment, EveryTruncationFailsCleanly) {
  const std::vector<std::uint8_t> bytes = BuildSegment(2, 5, SortedRecords());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> short_bytes(bytes.begin(),
                                                bytes.begin() + cut);
    const Parsed got = Parse(short_bytes);
    ASSERT_FALSE(got.status.ok()) << "accepted a " << cut << "-byte prefix";
    EXPECT_TRUE(got.status.code() == StatusCode::kInvalidArgument ||
                got.status.code() == StatusCode::kDataLoss)
        << got.status.ToString();
  }
}

TEST(MvSegment, EveryBitFlipFailsCleanly) {
  // The bit-flip sweep the ISSUE's corruption contract demands: no single
  // flipped bit anywhere in the image may survive parsing. Header fields
  // are covered by the footer CRC chain, each record by its own CRC.
  const std::vector<std::uint8_t> bytes = BuildSegment(2, 5, SortedRecords());
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = bytes;
      flipped[at] ^= static_cast<std::uint8_t>(1u << bit);
      const Parsed got = Parse(flipped);
      ASSERT_FALSE(got.status.ok())
          << "bit " << bit << " of byte " << at << " went undetected";
      EXPECT_TRUE(got.status.code() == StatusCode::kInvalidArgument ||
                  got.status.code() == StatusCode::kDataLoss)
          << got.status.ToString();
    }
  }
}

TEST(MvSegment, FileNamesRoundTripAndOrder) {
  const std::string name = mvseg::SegmentFileName(3, 12);
  EXPECT_EQ(name, "/mvseg.000000003.000000012");
  const auto header = mvseg::ParseSegmentFileName(name);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->rank, 3u);
  EXPECT_EQ(header->id, 12u);

  // Replay order is the lexicographic listing order of the names: rank
  // first, id as the tiebreak — with no manifest to consult.
  EXPECT_LT(mvseg::SegmentFileName(3, 999999999),
            mvseg::SegmentFileName(10, 1));
  EXPECT_LT(mvseg::SegmentFileName(3, 9), mvseg::SegmentFileName(3, 10));

  // The parser is lenient about padding (only emission pads)...
  const auto loose = mvseg::ParseSegmentFileName("/mvseg.3.12");
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(loose->rank, 3u);
  EXPECT_EQ(loose->id, 12u);
  // ...but rejects the wrong prefix, missing fields, and non-digits.
  EXPECT_FALSE(mvseg::ParseSegmentFileName("/mvwal.000000001").has_value());
  EXPECT_FALSE(mvseg::ParseSegmentFileName("/mvseg.3").has_value());
  EXPECT_FALSE(mvseg::ParseSegmentFileName("/mvseg.3x.12").has_value());
}

TEST(MvSegment, MergeNewestRunWinsAndDropsTombstones) {
  std::vector<std::vector<Record>> runs;
  runs.push_back({{RecordType::kPut, "a", "old-a"},
                  {RecordType::kPut, "b", "old-b"},
                  {RecordType::kPut, "d", "only-d"}});
  runs.push_back({{RecordType::kPut, "a", "new-a"},
                  {RecordType::kRemove, "b", ""},
                  {RecordType::kPut, "c", "only-c"}});
  std::vector<Record> merged;
  mvseg::MergeSortedRuns(runs, /*drop_tombstones=*/true,
                         [&merged](Record r) { merged.push_back(std::move(r)); });
  const std::vector<Record> want = {
      {RecordType::kPut, "a", "new-a"},
      {RecordType::kPut, "c", "only-c"},
      {RecordType::kPut, "d", "only-d"},
  };
  EXPECT_EQ(merged, want);
}

TEST(MvSegment, MergeKeepsTombstonesWhenAsked) {
  // A merge that does NOT start at the store's oldest segment must keep
  // surviving tombstones: something older may still hold the key.
  std::vector<std::vector<Record>> runs;
  runs.push_back({{RecordType::kPut, "b", "old-b"}});
  runs.push_back({{RecordType::kRemove, "b", ""}});
  std::vector<Record> merged;
  mvseg::MergeSortedRuns(runs, /*drop_tombstones=*/false,
                         [&merged](Record r) { merged.push_back(std::move(r)); });
  const std::vector<Record> want = {{RecordType::kRemove, "b", ""}};
  EXPECT_EQ(merged, want);
}

}  // namespace
}  // namespace ros::olfs
