// Randomized differential test for the MV's decoded-index cache.
//
// Two full MV stacks run the same randomized op sequence: one with a small
// cache (so hits, invalidations, and LRU evictions all exercise), one with
// the cache disabled (capacity 0). Every op's observable outcome — decoded
// JSON, error codes, namespace listings — must be byte-identical, and the
// cached side's bookkeeping must respect its bound. This is the
// falsification harness for the push-invalidation design: if any mutation
// path fails to drop a cached entry, the cached side eventually serves a
// stale decode and the streams diverge.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/disk/block_device.h"
#include "src/olfs/metadata_volume.h"
#include "src/sim/simulator.h"

namespace ros::olfs {
namespace {

constexpr std::size_t kCacheCapacity = 8;

struct Stack {
  explicit Stack(std::size_t cache_capacity)
      : device(sim, "ssd", 64 * kMiB, disk::SsdPerf()),
        volume(sim, &device, disk::MetadataVolumeParams()),
        mv(&volume, cache_capacity) {}

  sim::Simulator sim;
  disk::StorageDevice device;
  disk::Volume volume;
  MetadataVolume mv;
};

IndexFile MakeIndex(const std::string& path, std::uint64_t size) {
  IndexFile index(path, EntryType::kFile);
  VersionEntry entry;
  entry.total_size = size;
  entry.parts.push_back({"img-000042", size});
  index.AddVersion(std::move(entry), 15);
  return index;
}

// One op against one stack; returns a string capturing everything the op
// observed. op/arg/size are decided by the caller so both stacks see the
// exact same sequence.
sim::Task<std::string> ApplyOp(MetadataVolume* mv, int op, std::string path,
                               std::uint64_t size) {
  std::string outcome;
  if (op == 0) {  // Put
    Status status = co_await mv->Put(MakeIndex(path, size));
    outcome = "put:" + std::string(StatusCodeName(status.code()));
  } else if (op == 1) {  // Get via the shared-ref path and the copy path
    auto ref = co_await mv->GetRef(path);
    outcome = "get:";
    if (ref.ok()) {
      outcome += (*ref)->ToJson();
    } else {
      outcome += StatusCodeName(ref.status().code());
    }
    auto copy = co_await mv->Get(path);
    outcome += "|copy:";
    if (copy.ok()) {
      outcome += copy->ToJson();
    } else {
      outcome += StatusCodeName(copy.status().code());
    }
  } else if (op == 2) {  // Remove
    Status status = co_await mv->Remove(path);
    outcome = "rm:" + std::string(StatusCodeName(status.code()));
  } else if (op == 3) {  // direct volume write, bypassing the MV
    const std::string doc = MakeIndex(path, size).ToJson();
    const std::string name = MetadataVolume::IndexName(path);
    Status status = OkStatus();
    if (!mv->volume()->Exists(name)) {
      status = co_await mv->volume()->Create(name);
    }
    if (status.ok()) {
      status = co_await mv->volume()->WriteAll(
          name, std::vector<std::uint8_t>(doc.begin(), doc.end()));
    }
    outcome = "direct:" + std::string(StatusCodeName(status.code()));
  } else if (op == 4) {  // namespace reads
    outcome = "ls:";
    for (const auto& child : mv->ListChildren("/t")) {
      outcome += child + ",";
    }
    outcome += mv->HasChildren("/t") ? "|has" : "|none";
    outcome += "|n=" + std::to_string(mv->index_count());
  } else {  // snapshot → wipe → restore cycle
    auto snapshot = co_await mv->BuildSnapshotImage("snap", 64 * kMiB);
    outcome = "cycle:";
    if (!snapshot.ok()) {
      outcome += StatusCodeName(snapshot.status().code());
    } else {
      mv->WipeAll();
      Status restored = co_await mv->RestoreFromSnapshot(*snapshot);
      outcome += StatusCodeName(restored.code());
      outcome += "|n=" + std::to_string(mv->index_count());
    }
  }
  co_return outcome;
}

TEST(MvCacheTest, RandomizedOpsMatchCacheDisabledStack) {
  Stack cached(kCacheCapacity);
  Stack plain(0);
  Rng rng(20260807);

  // More paths than cache slots, so the LRU bound and eviction path are
  // continuously exercised, not just the happy hit path.
  std::vector<std::string> paths;
  for (int i = 0; i < 24; ++i) {
    paths.push_back("/t/f" + std::to_string(i));
  }

  for (int step = 0; step < 600; ++step) {
    // Ops 0-4 uniform; the expensive snapshot→wipe→restore cycle (op 5)
    // runs on ~2% of steps — enough to interleave restores with cached
    // reads without dominating the run.
    int op = static_cast<int>(rng.Below(5));
    if (rng.Chance(0.02)) {
      op = 5;
    }
    const std::string path = paths[rng.Below(paths.size())];
    const std::uint64_t size = 1 + rng.Below(1 << 20);

    auto got = cached.sim.RunUntilComplete(
        ApplyOp(&cached.mv, op, path, size));
    auto want = plain.sim.RunUntilComplete(
        ApplyOp(&plain.mv, op, path, size));
    ASSERT_EQ(got, want) << "diverged at step " << step << " op " << op
                         << " path " << path;
    ASSERT_LE(cached.mv.cache_size(), kCacheCapacity)
        << "cache exceeded its bound at step " << step;
    ASSERT_EQ(plain.mv.cache_size(), 0u);
  }

  // Deterministic closing sweep: touching every path in order forces the
  // working set past the 8-slot bound (the random walk above can stay
  // under it when a restore cycle clears the cache near a peak). Still
  // differential: both stacks apply the same ops.
  for (const std::string& path : paths) {
    auto got = cached.sim.RunUntilComplete(ApplyOp(&cached.mv, 0, path, 1));
    auto want = plain.sim.RunUntilComplete(ApplyOp(&plain.mv, 0, path, 1));
    ASSERT_EQ(got, want);
    ASSERT_LE(cached.mv.cache_size(), kCacheCapacity);
  }
  EXPECT_EQ(cached.mv.cache_size(), kCacheCapacity);

  const auto& stats = cached.mv.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u) << "24 paths vs 8 slots must evict";
  EXPECT_EQ(plain.mv.cache_stats().hits, 0u);
}

TEST(MvCacheTest, LruEvictsOldestAndCountsIt) {
  Stack stack(2);
  auto& sim = stack.sim;
  auto& mv = stack.mv;
  for (const char* path : {"/t/a", "/t/b", "/t/c"}) {
    ASSERT_TRUE(sim.RunUntilComplete(mv.Put(MakeIndex(path, 1))).ok());
  }
  EXPECT_EQ(mv.cache_size(), 2u);
  EXPECT_EQ(mv.cache_stats().evictions, 1u);

  // "/t/a" was evicted (oldest); "/t/b" and "/t/c" are resident.
  const auto before = mv.cache_stats();
  ASSERT_TRUE(sim.RunUntilComplete(mv.Get("/t/c")).ok());
  ASSERT_TRUE(sim.RunUntilComplete(mv.Get("/t/b")).ok());
  EXPECT_EQ(mv.cache_stats().hits, before.hits + 2);
  ASSERT_TRUE(sim.RunUntilComplete(mv.Get("/t/a")).ok());
  EXPECT_EQ(mv.cache_stats().misses, before.misses + 1);
  // The miss re-published "/t/a", evicting the then-oldest entry ("/t/c",
  // demoted by the touch order above).
  EXPECT_EQ(mv.cache_stats().evictions, 2u);
  const auto mid = mv.cache_stats();
  ASSERT_TRUE(sim.RunUntilComplete(mv.Get("/t/b")).ok());
  ASSERT_TRUE(sim.RunUntilComplete(mv.Get("/t/a")).ok());
  EXPECT_EQ(mv.cache_stats().hits, mid.hits + 2);
}

TEST(MvCacheTest, ZeroCapacityNeverCaches) {
  Stack stack(0);
  auto& sim = stack.sim;
  auto& mv = stack.mv;
  ASSERT_TRUE(sim.RunUntilComplete(mv.Put(MakeIndex("/t/z", 3))).ok());
  for (int i = 0; i < 3; ++i) {
    auto index = sim.RunUntilComplete(mv.Get("/t/z"));
    ASSERT_TRUE(index.ok());
    EXPECT_EQ((*index->Latest())->total_size, 3u);
  }
  EXPECT_EQ(mv.cache_size(), 0u);
  EXPECT_EQ(mv.cache_stats().hits, 0u);
  EXPECT_EQ(mv.cache_stats().misses, 0u);  // disabled, not "always missing"
}

}  // namespace
}  // namespace ros::olfs
