// Replays the checked-in fuzz corpus (fuzz/corpus/) through the shared
// fuzz-harness bodies under plain asserts, so every tier-1 ctest run
// re-verifies each seed and every regression input from past fuzz findings.
//
// A harness failure aborts the process (the harness uses ROS-style hard
// asserts), which gtest reports as a crashed test — exactly the signal a
// regressed parser bug should produce.
#include "fuzz/harness.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <vector>

namespace ros::fuzz {
namespace {

namespace fs = std::filesystem;

#ifndef ROS_CORPUS_DIR
#error "ROS_CORPUS_DIR must be defined by the build"
#endif

std::vector<fs::path> CorpusFiles(const char* subdir) {
  const fs::path dir = fs::path(ROS_CORPUS_DIR) / subdir;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void ReplayAll(const char* subdir,
               const std::function<void(const std::uint8_t*, std::size_t)>&
                   harness) {
  const std::vector<fs::path> files = CorpusFiles(subdir);
  // An empty directory would silently skip the whole check — e.g. after a
  // bad checkout or a corpus move. Treat it as a test failure.
  ASSERT_FALSE(files.empty())
      << "no corpus files under " << ROS_CORPUS_DIR << "/" << subdir;
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.string());
    const std::vector<std::uint8_t> data = ReadFileBytes(file);
    harness(data.data(), data.size());
  }
}

TEST(CorpusReplay, Json) { ReplayAll("json", FuzzJson); }

TEST(CorpusReplay, IndexFile) { ReplayAll("index", FuzzIndexFile); }

TEST(CorpusReplay, UdfImage) { ReplayAll("udf", FuzzUdfImage); }

TEST(CorpusReplay, MvLog) { ReplayAll("mvlog", FuzzMvLog); }

TEST(CorpusReplay, AuditManifest) {
  ReplayAll("audit", FuzzAuditManifest);
}

}  // namespace
}  // namespace ros::fuzz
