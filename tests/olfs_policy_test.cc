// Policy and schema tests: the busy-drive policies of §4.8, the RAID-6
// disc-array schema of §4.7, power reference points, and dual-erasure
// stream recovery.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/gf256.h"
#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/olfs/parity.h"
#include "src/olfs/power.h"
#include "src/sim/time.h"
#include "src/udf/serializer.h"

namespace ros::olfs {
namespace {

using sim::Seconds;
using sim::ToSeconds;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

struct Rig {
  explicit Rig(OlfsParams params) {
    SystemConfig config = TestSystemConfig();
    config.drive_sets = 1;  // a single bay: burns and fetches collide
    config.hdd_capacity = 8 * kGiB;
    system = std::make_unique<RosSystem>(sim, config);
    olfs = std::make_unique<Olfs>(sim, system.get(), params);
    olfs->burns().burn_start_interval = Seconds(1);
  }

  sim::Simulator sim;
  std::unique_ptr<RosSystem> system;
  std::unique_ptr<Olfs> olfs;
};

OlfsParams PolicyParams(BusyDrivePolicy policy) {
  OlfsParams params;
  // Large enough media that a residual burn takes minutes — the regime
  // where the two policies of §4.8 diverge.
  params.disc_capacity_override = 2 * kGiB;
  params.read_cache_bytes = 0;
  params.busy_drive_policy = policy;
  return params;
}

// Shared scenario: burn a first batch (the cold file), then start a long
// second burn, and read the cold file while the only bay is burning.
// Returns the read latency in seconds.
double ReadDuringBurn(Rig& rig) {
  Olfs& olfs = *rig.olfs;
  sim::Simulator& sim = rig.sim;

  auto payload = RandomBytes(64 * kKiB, 77);
  ROS_CHECK(sim.RunUntilComplete(
                olfs.Create("/cold/data.bin", payload, payload.size()))
                .ok());
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());

  // Kick off a second burn that will occupy the single bay for minutes.
  for (int i = 0; i < 3; ++i) {
    ROS_CHECK(sim.RunUntilComplete(
                  olfs.Create("/bulk/f" + std::to_string(i),
                              RandomBytes(4096, i), 1536 * kMiB))
                  .ok());
  }
  ROS_CHECK(sim.RunUntilComplete(olfs.buckets().CloseCurrentBucket()).ok());
  ROS_CHECK(sim.RunUntilComplete(olfs.burns().FlushPartialArray()).ok());
  // Let the burn get past loading and into recording.
  sim.RunFor(Seconds(80));

  sim::TimePoint t0 = sim.now();
  auto data = sim.RunUntilComplete(
      olfs.Read("/cold/data.bin", 0, 64 * kKiB));
  ROS_CHECK(data.ok());
  ROS_CHECK(std::equal(data->begin(), data->end(),
                       RandomBytes(64 * kKiB, 77).begin()));
  double seconds = ToSeconds(sim.now() - t0);
  ROS_CHECK(sim.RunUntilComplete(olfs.burns().DrainAll()).ok());
  return seconds;
}

// §4.8 policy one: wait for the burning task to complete.
TEST(BusyDrivePolicy, WaitForBurnWaitsOutTheBurn) {
  Rig rig(PolicyParams(BusyDrivePolicy::kWaitForBurn));
  double seconds = ReadDuringBurn(rig);
  // Residual burn (minutes-scale in Table 1's terms for real media; tens
  // of seconds on the shrunken test media) + unload + load.
  EXPECT_GT(seconds, 120.0);
  EXPECT_EQ(rig.olfs->burns().interrupts_taken(), 0);
}

// §4.8 policy two: interrupt the burn, swap arrays, resume in append-burn
// mode afterwards.
TEST(BusyDrivePolicy, InterruptAndSwapServesReadSooner) {
  Rig wait_rig(PolicyParams(BusyDrivePolicy::kWaitForBurn));
  const double waited = ReadDuringBurn(wait_rig);

  Rig swap_rig(PolicyParams(BusyDrivePolicy::kInterruptAndSwap));
  const double swapped = ReadDuringBurn(swap_rig);

  EXPECT_GT(swap_rig.olfs->burns().interrupts_taken(), 0);
  EXPECT_LT(swapped, waited);

  // The interrupted burn resumed and completed: everything is on discs
  // and still readable.
  Olfs& olfs = *swap_rig.olfs;
  for (int i = 0; i < 3; ++i) {
    auto data = swap_rig.sim.RunUntilComplete(
        olfs.Read("/bulk/f" + std::to_string(i), 0, 4096));
    ASSERT_TRUE(data.ok()) << i << ": " << data.status().ToString();
    EXPECT_TRUE(std::equal(data->begin(), data->end(),
                           RandomBytes(4096, i).begin()));
  }
}

// §4.7: the RAID-6 schema (10 data + 2 parity) burns 12-disc arrays and
// survives a corrupted data disc via the scrubber.
TEST(Raid6Schema, BurnsAndScrubsWithTwoParityImages) {
  OlfsParams params = PolicyParams(BusyDrivePolicy::kWaitForBurn);
  params.parity_images = 2;
  Rig rig(params);
  Olfs& olfs = *rig.olfs;
  sim::Simulator& sim = rig.sim;

  auto payload = RandomBytes(32 * kKiB, 5);
  ROS_CHECK(sim.RunUntilComplete(
                olfs.Create("/r6/a", payload, payload.size())).ok());
  ROS_CHECK(sim.RunUntilComplete(
                olfs.Create("/r6/b", RandomBytes(16 * kKiB, 6),
                            16 * kKiB)).ok());
  ASSERT_TRUE(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());

  // 1 data image + P + Q burned.
  int parities = 0;
  for (const std::string& id : olfs.images().BurnedImages()) {
    parities += id.ends_with("-P") || id.ends_with("-Q");
  }
  EXPECT_EQ(parities, 2);

  // Corrupt the data disc; the scrub repairs from P.
  auto index = sim.RunUntilComplete(olfs.mv().Get("/r6/a"));
  ASSERT_TRUE(index.ok());
  auto record = olfs.images().Lookup((*index->Latest())->parts[0].image_id);
  ASSERT_TRUE(record.ok());
  olfs.mech().DiscAt(*(*record)->disc)->CorruptSector(1);
  auto repaired = sim.RunUntilComplete(olfs.ScrubAndRepair());
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(*repaired, 1);
  ASSERT_TRUE(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  auto data = sim.RunUntilComplete(olfs.Read("/r6/a", 0, payload.size()));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, payload);
}

// Dual-erasure recovery of serialized streams (the RAID-6 math itself).
TEST(RecoverTwo, ReconstructsAnyTwoMissingStreams) {
  constexpr int kMembers = 6;
  std::vector<std::vector<std::uint8_t>> streams;
  std::size_t max_len = 0;
  for (int i = 0; i < kMembers; ++i) {
    streams.push_back(RandomBytes(1000 + i * 137, 100 + i));
    max_len = std::max(max_len, streams.back().size());
  }
  // Build P and Q over zero-padded streams.
  std::vector<std::uint8_t> p(max_len, 0);
  std::vector<std::uint8_t> q(max_len, 0);
  for (int k = 0; k < kMembers; ++k) {
    ros::gf256::XorAcc(p, streams[k]);
    ros::gf256::MulAcc(q, ros::gf256::Pow2(static_cast<unsigned>(k)),
                       streams[k]);
  }

  for (int a = 0; a < kMembers; ++a) {
    for (int b = a + 1; b < kMembers; ++b) {
      auto survivors = streams;
      auto original_a = survivors[a];
      auto original_b = survivors[b];
      survivors[a].clear();
      survivors[b].clear();
      auto recovered = ParityBuilder::RecoverTwo(survivors, p, q, a, b);
      ASSERT_TRUE(recovered.ok()) << a << "," << b;
      EXPECT_TRUE(std::equal(original_a.begin(), original_a.end(),
                             recovered->first.begin()));
      EXPECT_TRUE(std::equal(original_b.begin(), original_b.end(),
                             recovered->second.begin()));
    }
  }
}

TEST(RecoverTwo, RejectsBadArguments) {
  std::vector<std::vector<std::uint8_t>> streams(4);
  streams[0] = {1};
  streams[3] = {2};
  std::vector<std::uint8_t> p{0};
  std::vector<std::uint8_t> q{0};
  EXPECT_FALSE(ParityBuilder::RecoverTwo(streams, p, q, 1, 1).ok());
  EXPECT_FALSE(ParityBuilder::RecoverTwo(streams, p, q, 1, 9).ok());
  EXPECT_FALSE(ParityBuilder::RecoverTwo(streams, p, q, 0, 1).ok());
  std::vector<std::uint8_t> q_long{0, 0};
  EXPECT_FALSE(ParityBuilder::RecoverTwo(streams, p, q_long, 1, 2).ok());
}

// §5.1's power reference points.
TEST(PowerModel, MatchesPrototypeFigures) {
  SystemConfig prototype;
  PowerModel model;
  EXPECT_NEAR(model.IdleWatts(prototype), 185.0, 3.0);
  EXPECT_NEAR(model.PeakWatts(prototype), 652.0, 3.0);
  EXPECT_LE(model.roller_active_w, 50.0);
  EXPECT_NEAR(model.drive_busy_w, 8.0, 0.01);
  // Monotonicity: more activity, more power.
  PowerModel::Activity light{.controller_busy = true};
  PowerModel::Activity heavy{.controller_busy = true, .hdds_busy = 14,
                             .drives_busy = 24};
  EXPECT_LT(model.Watts(prototype, light), model.Watts(prototype, heavy));
}

}  // namespace
}  // namespace ros::olfs
