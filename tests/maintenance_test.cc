// Tests of the Maintenance Interface (MI, §4.1) and checkpoint/restore
// (§4.2).
#include "src/olfs/maintenance.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

class MaintenanceTest : public ::testing::Test {
 protected:
  MaintenanceTest() {
    system_ = std::make_unique<RosSystem>(sim_, TestSystemConfig());
    NewController();
  }

  void NewController() {
    // A replaced controller's background loops still reference the old
    // Olfs; destroy those frames before the old controller dies.
    sim_.Shutdown();
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), Params());
    olfs_->burns().burn_start_interval = Seconds(1);
    mi_ = std::make_unique<Maintenance>(olfs_.get());
  }

  static OlfsParams Params() {
    OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    return params;
  }

  // Destroy suspended background coroutines (burn/snapshot/scrub loops)
  // while the system objects they borrow are still alive.
  ~MaintenanceTest() override { sim_.Shutdown(); }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
  std::unique_ptr<Maintenance> mi_;
};

TEST_F(MaintenanceTest, StatusReportReflectsSystemState) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/m/a", RandomBytes(5000, 1), 5000)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());

  json::Value report = mi_->StatusReport();
  EXPECT_EQ(report["disc_arrays"]["used"].as_int(), 1);
  EXPECT_EQ(report["pipeline"]["arrays_burned"].as_int(), 1);
  EXPECT_EQ(report["pipeline"]["active_burns"].as_int(), 0);
  EXPECT_GE(report["namespace"]["entries"].as_int(), 2);  // /m and /m/a
  EXPECT_GE(report["images"].as_array().size(), 2u);  // data + parity
  // It round-trips through JSON (the console wire format).
  auto reparsed = json::Parse(report.Dump());
  ASSERT_TRUE(reparsed.ok());
}

// The report exposes the background prefetch class, the read cache's
// ghost list, and the whole-tray readahead counters — all zero on an
// untagged workload, and speculative_demand_evictions (the scheduler's
// self-check) must be zero always.
TEST_F(MaintenanceTest, StatusReportExposesHintTelemetry) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/m/t", RandomBytes(5000, 2), 5000)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());

  json::Value report = mi_->StatusReport();
  EXPECT_EQ(report["fetch_scheduler"]["speculative_enqueued"].as_int(), 0);
  EXPECT_EQ(report["fetch_scheduler"]["speculative_loads"].as_int(), 0);
  EXPECT_EQ(
      report["fetch_scheduler"]["speculative_demand_evictions"].as_int(),
      0);
  EXPECT_GE(report["caches"]["image_ghost_entries"].as_int(), 0);
  EXPECT_GE(report["caches"]["image_probationary_bytes"].as_int(), 0);
  EXPECT_EQ(report["caches"]["readahead_images"].as_int(), 0);
  EXPECT_EQ(report["caches"]["readahead_bytes"].as_int(), 0);

  // A burned image evicted from the read cache lands in the ghost list,
  // and the occupancy shows up in the next report.
  olfs_->cache().Remove(report["images"].as_array()[0]["id"].as_string());
  json::Value after = mi_->StatusReport();
  EXPECT_GE(after["caches"]["image_ghost_entries"].as_int(), 1);
}

TEST_F(MaintenanceTest, TriggerScrubRepairs) {
  auto payload = RandomBytes(20 * kKiB, 3);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/m/s", payload, payload.size())).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  auto index = sim_.RunUntilComplete(olfs_->mv().Get("/m/s"));
  ASSERT_TRUE(index.ok());
  auto record = olfs_->images().Lookup((*index->Latest())->parts[0].image_id);
  ASSERT_TRUE(record.ok());
  olfs_->mech().DiscAt(*(*record)->disc)->CorruptSector(1);

  auto repaired = sim_.RunUntilComplete(mi_->TriggerScrub());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, 1);
}

// §4.2: a crashed controller restores from the MV checkpoint — far faster
// than the disc-scan recovery, with buffered (unburned) images preserved.
TEST_F(MaintenanceTest, CheckpointRestoreSurvivesControllerCrash) {
  // A burned file plus an unburned one still in the buffer.
  auto burned = RandomBytes(30 * kKiB, 10);
  auto buffered = RandomBytes(12 * kKiB, 11);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/m/burned", burned, burned.size())).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/m/buffered", buffered, buffered.size()))
                  .ok());

  ASSERT_TRUE(sim_.RunUntilComplete(mi_->Checkpoint()).ok());
  const int counter_before = olfs_->buckets().buckets_created();

  // Crash: the controller process dies; MV and disk buffer survive.
  NewController();
  EXPECT_EQ(sim_.RunUntilComplete(olfs_->Read("/m/burned", 0, 8))
                .status()
                .code(),
            StatusCode::kNotFound);  // DIM is empty before restore

  ASSERT_TRUE(sim_.RunUntilComplete(mi_->RestoreFromCheckpoint()).ok());

  // Burned content is readable (via the disc), buffered content from the
  // restored buffer image.
  auto data = sim_.RunUntilComplete(
      olfs_->Read("/m/burned", 0, burned.size()));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, burned);
  data = sim_.RunUntilComplete(
      olfs_->Read("/m/buffered", 0, buffered.size()));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, buffered);

  // DAindex survived; image-id numbering continues past old ids.
  EXPECT_EQ(olfs_->da_index().CountState(ArrayState::kUsed), 1);
  EXPECT_GE(olfs_->buckets().buckets_created(), counter_before);

  // The restored (formerly open) bucket burns as a normal image.
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  data = sim_.RunUntilComplete(
      olfs_->Read("/m/buffered", 0, buffered.size()));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, buffered);
}

TEST_F(MaintenanceTest, RestoreWithoutCheckpointFails) {
  EXPECT_FALSE(
      sim_.RunUntilComplete(mi_->RestoreFromCheckpoint()).ok());
}

TEST_F(MaintenanceTest, CheckpointIsIdempotent) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/m/x", RandomBytes(1000, 1), 1000)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mi_->Checkpoint()).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mi_->Checkpoint()).ok());
}

}  // namespace
}  // namespace ros::olfs
