#include "src/olfs/read_cache.h"

#include <gtest/gtest.h>

namespace ros::olfs {
namespace {

TEST(ReadCache, AdmitAndContains) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_EQ(cache.used_bytes(), 400u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReadCache, ReAdmitReplacesSize) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  cache.Admit("a", 250);
  EXPECT_EQ(cache.used_bytes(), 250u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReadCache, EvictionCandidatesAreLruOrdered) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  cache.Admit("b", 400);
  cache.Admit("c", 400);  // 1200 > 1000
  auto victims = cache.EvictionCandidates();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], "a");
}

TEST(ReadCache, TouchRefreshesRecency) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  cache.Admit("b", 400);
  cache.Touch("a");        // now b is the least recent
  cache.Admit("c", 400);
  auto victims = cache.EvictionCandidates();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], "b");
}

TEST(ReadCache, MultipleEvictionsUntilFit) {
  ReadCache cache(500);
  cache.Admit("a", 300);
  cache.Admit("b", 300);
  cache.Admit("c", 300);
  auto victims = cache.EvictionCandidates();
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], "a");
  EXPECT_EQ(victims[1], "b");
}

TEST(ReadCache, RemoveReleasesBytes) {
  ReadCache cache(1000);
  cache.Admit("a", 700);
  cache.Remove("a");
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.Contains("a"));
  cache.Remove("a");  // idempotent
}

TEST(ReadCache, HitMissCounters) {
  ReadCache cache(1000);
  cache.Admit("a", 100);
  cache.Touch("a");
  cache.Touch("a");
  cache.Touch("ghost");  // unknown: not a hit
  cache.RecordMiss();
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace ros::olfs
