#include "src/olfs/read_cache.h"

#include <gtest/gtest.h>

namespace ros::olfs {
namespace {

TEST(ReadCache, AdmitAndContains) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_EQ(cache.used_bytes(), 400u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReadCache, ReAdmitReplacesSize) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  cache.Admit("a", 250);
  EXPECT_EQ(cache.used_bytes(), 250u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReadCache, EvictionCandidatesAreLruOrdered) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  cache.Admit("b", 400);
  cache.Admit("c", 400);  // 1200 > 1000
  auto victims = cache.EvictionCandidates();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], "a");
}

TEST(ReadCache, TouchRefreshesRecency) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  cache.Admit("b", 400);
  cache.Touch("a");        // now b is the least recent
  cache.Admit("c", 400);
  auto victims = cache.EvictionCandidates();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], "b");
}

TEST(ReadCache, MultipleEvictionsUntilFit) {
  ReadCache cache(500);
  cache.Admit("a", 300);
  cache.Admit("b", 300);
  cache.Admit("c", 300);
  auto victims = cache.EvictionCandidates();
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], "a");
  EXPECT_EQ(victims[1], "b");
}

TEST(ReadCache, RemoveReleasesBytes) {
  ReadCache cache(1000);
  cache.Admit("a", 700);
  cache.Remove("a");
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.Contains("a"));
  cache.Remove("a");  // idempotent
}

TEST(ReadCache, HitMissCounters) {
  ReadCache cache(1000);
  cache.Admit("a", 100);
  EXPECT_TRUE(cache.Touch("a"));
  EXPECT_TRUE(cache.Touch("a"));
  // Unknown id: Touch itself records the miss — both counters live in the
  // cache, so they cannot drift apart.
  EXPECT_FALSE(cache.Touch("unknown"));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ReadCache, TouchPromotesToProtectedSegment) {
  ReadCache cache(1000);
  cache.Admit("a", 200);
  EXPECT_FALSE(cache.InProtected("a"));  // admitted probationary
  cache.Touch("a");
  EXPECT_TRUE(cache.InProtected("a"));   // re-reference promotes
  EXPECT_EQ(cache.protected_bytes(), 200u);
  EXPECT_EQ(cache.probationary_bytes(), 0u);
}

// A cold sequential sweep (every image touched exactly once) must churn
// through the probationary segment and leave the promoted hot set intact.
TEST(ReadCache, SequentialSweepLeavesProtectedSegmentIntact) {
  ReadCache cache(1000);
  // Hot working set: admitted, then re-referenced -> protected.
  cache.Admit("hot1", 300);
  cache.Admit("hot2", 300);
  cache.Touch("hot1");
  cache.Touch("hot2");
  // Sweep: many one-touch admissions, far exceeding capacity.
  for (int i = 0; i < 20; ++i) {
    const std::string id = "sweep" + std::to_string(i);
    cache.Admit(id, 200);
    auto victims = cache.EvictionCandidates();
    for (const std::string& victim : victims) {
      EXPECT_NE(victim.rfind("hot", 0), 0u)
          << "sweep evicted hot-set member " << victim;
      cache.Remove(victim);
    }
  }
  EXPECT_TRUE(cache.Contains("hot1"));
  EXPECT_TRUE(cache.Contains("hot2"));
  EXPECT_TRUE(cache.InProtected("hot1"));
  EXPECT_TRUE(cache.InProtected("hot2"));
}

// An id evicted and re-admitted shortly after proved it has reuse the
// probationary segment could not see: the ghost list sends it straight to
// the protected segment.
TEST(ReadCache, GhostHitReAdmissionPromotes) {
  ReadCache cache(1000);
  cache.Admit("a", 400);
  cache.Remove("a");  // eviction: remembered in the ghost list
  EXPECT_FALSE(cache.Contains("a"));
  cache.Admit("a", 400);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_TRUE(cache.InProtected("a"));
  EXPECT_EQ(cache.ghost_hits(), 1u);
  // A second eviction + re-admit is another ghost hit.
  cache.Remove("a");
  cache.Admit("a", 400);
  EXPECT_EQ(cache.ghost_hits(), 2u);
}

// Ghost-list occupancy tracks evictions, and a re-admission consumes its
// ghost entry (the occupancy and re-admission counts surfaced in the
// maintenance report).
TEST(ReadCache, GhostOccupancyGrowsOnEvictionShrinksOnReAdmission) {
  ReadCache cache(1000);
  EXPECT_EQ(cache.ghost_entries(), 0u);
  cache.Admit("a", 100);
  cache.Admit("b", 100);
  cache.Remove("a");
  cache.Remove("b");
  EXPECT_EQ(cache.ghost_entries(), 2u);
  EXPECT_EQ(cache.ghost_hits(), 0u);
  // Re-admitting "a" consumes its ghost entry; "b" stays remembered.
  cache.Admit("a", 100);
  EXPECT_EQ(cache.ghost_entries(), 1u);
  EXPECT_EQ(cache.ghost_hits(), 1u);
  // An id the ghost list never saw changes nothing.
  cache.Admit("c", 100);
  EXPECT_EQ(cache.ghost_entries(), 1u);
  EXPECT_EQ(cache.ghost_hits(), 1u);
}

// The ghost list is bounded: old evictions fall off the tail and no
// longer earn protected re-admission.
TEST(ReadCache, GhostListBoundedEviction) {
  ReadCache cache(1 << 20);
  cache.Admit("first", 1);
  cache.Remove("first");
  // Push 1024 younger evictions through: "first" must age out.
  for (int i = 0; i < 1024; ++i) {
    const std::string id = "g" + std::to_string(i);
    cache.Admit(id, 1);
    cache.Remove(id);
  }
  EXPECT_EQ(cache.ghost_entries(), 1024u);
  cache.Admit("first", 1);
  EXPECT_EQ(cache.ghost_hits(), 0u);
  EXPECT_FALSE(cache.InProtected("first"));
}

// Protected overflow demotes LRU protected entries back to probationary
// rather than evicting them outright.
TEST(ReadCache, ProtectedOverflowDemotesToProbationary) {
  ReadCache cache(900);  // protected share = 720
  cache.Admit("a", 500);
  cache.Admit("b", 500);
  cache.Touch("a");
  cache.Touch("b");  // 1000 > 720 protected: "a" (LRU) demotes
  EXPECT_TRUE(cache.InProtected("b"));
  EXPECT_FALSE(cache.InProtected("a"));
  EXPECT_TRUE(cache.Contains("a"));
  // The demoted entry is now the eviction candidate.
  auto victims = cache.EvictionCandidates();
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(victims[0], "a");
}

// protected_fraction <= 0 degenerates to the plain LRU shape: no
// promotion, no ghost list (the pre-SLRU baseline used by benches).
TEST(ReadCache, PlainLruModeHasNoSegmentsOrGhost) {
  ReadCache cache(1000, /*protected_fraction=*/0.0);
  cache.Admit("a", 400);
  cache.Touch("a");
  EXPECT_FALSE(cache.InProtected("a"));
  cache.Remove("a");
  cache.Admit("a", 400);
  EXPECT_EQ(cache.ghost_hits(), 0u);
  EXPECT_FALSE(cache.InProtected("a"));
}

}  // namespace
}  // namespace ros::olfs
