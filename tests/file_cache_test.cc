// Tests of the file-granular read cache and sibling prefetch (§4.1's
// future-work refinement), both the data structure and its integration.
#include "src/olfs/file_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;
using sim::ToSeconds;

TEST(FileCache, DisabledWhenZeroCapacity) {
  FileCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Put("k", {1, 2, 3});
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST(FileCache, PutGetRoundTrip) {
  FileCache cache(1000);
  cache.Put("a", {1, 2, 3});
  const auto* content = cache.Get("a");
  ASSERT_NE(content, nullptr);
  EXPECT_EQ(*content, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FileCache, LruEvictionByBytes) {
  FileCache cache(100);
  cache.Put("a", std::vector<std::uint8_t>(40));
  cache.Put("b", std::vector<std::uint8_t>(40));
  ASSERT_NE(cache.Get("a"), nullptr);          // refresh a
  cache.Put("c", std::vector<std::uint8_t>(40));  // evicts b
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_LE(cache.used_bytes(), 100u);
}

TEST(FileCache, PutRefreshesExistingKey) {
  FileCache cache(1000);
  cache.Put("a", std::vector<std::uint8_t>(10, 1));
  cache.Put("a", std::vector<std::uint8_t>(20, 2));
  EXPECT_EQ(cache.used_bytes(), 20u);
  const auto* content = cache.Get("a");
  ASSERT_NE(content, nullptr);
  EXPECT_EQ((*content)[0], 2);
}

TEST(FileCache, KeyFormat) {
  EXPECT_EQ(FileCache::Key("img-1", "/a/b#v2"), "img-1@/a/b#v2");
}

// --- integration ---

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

struct Rig {
  explicit Rig(std::uint64_t file_cache_bytes, int prefetch) {
    system = std::make_unique<RosSystem>(sim, TestSystemConfig());
    OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    params.read_cache_bytes = 0;  // force every cold read onto discs
    params.file_cache_bytes = file_cache_bytes;
    params.prefetch_siblings = prefetch;
    olfs = std::make_unique<Olfs>(sim, system.get(), params);
    olfs->burns().burn_start_interval = Seconds(1);
  }

  // Preserves `count` sibling files under /dir and burns them to discs.
  void Preserve(int count) {
    for (int i = 0; i < count; ++i) {
      ROS_CHECK(sim.RunUntilComplete(
                    olfs->Create("/dir/f" + std::to_string(i),
                                 RandomBytes(8 * kKiB, 1000 + i)))
                    .ok());
    }
    ROS_CHECK(sim.RunUntilComplete(olfs->FlushAndDrain()).ok());
  }

  double TimedRead(int i) {
    sim::TimePoint t0 = sim.now();
    auto data = sim.RunUntilComplete(
        olfs->Read("/dir/f" + std::to_string(i), 0, 8 * kKiB));
    ROS_CHECK(data.ok());
    ROS_CHECK(*data == RandomBytes(8 * kKiB, 1000 + i));
    return ToSeconds(sim.now() - t0);
  }

  sim::Simulator sim;
  std::unique_ptr<RosSystem> system;
  std::unique_ptr<Olfs> olfs;
};

TEST(FileCacheIntegration, RepeatReadsHitAfterArrayUnloaded) {
  Rig rig(64 * kMiB, 0);
  rig.Preserve(4);

  // Cold read: mechanical fetch.
  double cold = rig.TimedRead(0);
  EXPECT_GT(cold, 60.0);
  rig.sim.Run();  // let the background prefetch finish

  // Force the array out of the drives (another task claims the bay).
  auto bay = rig.sim.RunUntilComplete(
      rig.olfs->mech().AcquireBay(std::nullopt, true));
  ASSERT_TRUE(bay.ok());
  ASSERT_TRUE(rig.sim.RunUntilComplete(
                  rig.olfs->mech().UnloadArray(*bay)).ok());
  rig.olfs->mech().ReleaseBay(*bay);

  // The file-granular cache still answers without any mechanics.
  double warm = rig.TimedRead(0);
  EXPECT_LT(warm, 0.1);
  EXPECT_GT(rig.olfs->file_cache().hits(), 0u);
}

TEST(FileCacheIntegration, SiblingPrefetchWarmsTheDirectory) {
  Rig rig(64 * kMiB, 8);
  rig.Preserve(5);

  (void)rig.TimedRead(0);  // cold; prefetch kicks off in the background
  rig.sim.Run();

  // All siblings are now cached.
  for (int i = 1; i < 5; ++i) {
    EXPECT_TRUE(rig.olfs->file_cache().Contains(FileCache::Key(
        rig.olfs->images().BurnedImages().empty()
            ? ""
            : [&] {
                auto index = rig.sim.RunUntilComplete(
                    rig.olfs->mv().Get("/dir/f" + std::to_string(i)));
                return (*index->Latest())->parts[0].image_id;
              }(),
        "/dir/f" + std::to_string(i))))
        << i;
  }

  // Unload the array; sibling reads are served from the cache.
  auto bay = rig.sim.RunUntilComplete(
      rig.olfs->mech().AcquireBay(std::nullopt, true));
  ASSERT_TRUE(bay.ok());
  if (rig.olfs->mech().bay_tray(*bay).has_value()) {
    ASSERT_TRUE(rig.sim.RunUntilComplete(
                    rig.olfs->mech().UnloadArray(*bay)).ok());
  }
  rig.olfs->mech().ReleaseBay(*bay);
  for (int i = 1; i < 5; ++i) {
    EXPECT_LT(rig.TimedRead(i), 0.1) << i;
  }
  EXPECT_EQ(rig.olfs->fetches().fetches(), 1u);  // one mechanical fetch
}

TEST(FileCacheIntegration, DisabledCacheRefetchesMechanically) {
  Rig rig(0, 0);
  rig.Preserve(2);
  EXPECT_GT(rig.TimedRead(0), 60.0);  // cold fetch
  // Array parked: fast. Unload it...
  auto bay = rig.sim.RunUntilComplete(
      rig.olfs->mech().AcquireBay(std::nullopt, true));
  ASSERT_TRUE(bay.ok());
  ASSERT_TRUE(rig.sim.RunUntilComplete(
                  rig.olfs->mech().UnloadArray(*bay)).ok());
  rig.olfs->mech().ReleaseBay(*bay);
  // ...and without a file cache the next read fetches again.
  EXPECT_GT(rig.TimedRead(0), 60.0);
  EXPECT_EQ(rig.olfs->fetches().fetches(), 2u);
}

}  // namespace
}  // namespace ros::olfs
