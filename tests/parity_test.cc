// Unit tests for delayed parity generation and stream recovery (§4.7).
#include "src/olfs/parity.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/gf256.h"
#include "src/disk/block_device.h"
#include "src/olfs/bucket_manager.h"
#include "src/sim/simulator.h"
#include "src/udf/serializer.h"

namespace ros::olfs {
namespace {

class ParityTest : public ::testing::Test {
 protected:
  ParityTest() {
    params_.disc_capacity_override = 4 * kMiB;
    for (int i = 0; i < 2; ++i) {
      devices_.push_back(std::make_unique<disk::StorageDevice>(
          sim_, "d" + std::to_string(i), 256 * kMiB, disk::SsdPerf()));
      volumes_.push_back(std::make_unique<disk::Volume>(
          sim_, devices_.back().get(),
          disk::VolumeParams{.journal_metadata = false}));
    }
    volume_ptrs_ = {volumes_[0].get(), volumes_[1].get()};
    builder_ = std::make_unique<ParityBuilder>(sim_, params_, &images_);
  }

  // Registers a closed image with distinct content.
  std::string MakeImage(int n) {
    const std::string id = "img-" + std::to_string(n);
    auto image = std::make_shared<udf::Image>(id, 4 * kMiB);
    ROS_CHECK(image->AddFile("/data/f" + std::to_string(n),
                             std::vector<std::uint8_t>(100 + n * 13,
                                                       static_cast<std::uint8_t>(n)))
                  .ok());
    const std::string file = BucketManager::VolumeFileName(id);
    disk::Volume* volume = volume_ptrs_[n % 2];
    ROS_CHECK(sim_.RunUntilComplete(volume->Create(file)).ok());
    ROS_CHECK(sim_.RunUntilComplete(
                  volume->AppendSparse(file, {}, image->used_bytes())).ok());
    ROS_CHECK(images_.RegisterBucket(image, n % 2, file).ok());
    ROS_CHECK(images_.MarkClosed(id).ok());
    return id;
  }

  sim::Simulator sim_;
  OlfsParams params_;
  std::vector<std::unique_ptr<disk::StorageDevice>> devices_;
  std::vector<std::unique_ptr<disk::Volume>> volumes_;
  std::vector<disk::Volume*> volume_ptrs_;
  DiscImageStore images_;
  std::unique_ptr<ParityBuilder> builder_;
};

TEST_F(ParityTest, BuildProducesXorOfSerializedStreams) {
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(MakeImage(i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 1));
  ASSERT_TRUE(parities.ok());
  ASSERT_EQ(parities->size(), 1u);
  const ParityImage& p = (*parities)[0];
  EXPECT_EQ(p.member_ids, ids);
  // Build returns metadata; the single retained payload lives in the
  // builder and is served by Get().
  EXPECT_TRUE(p.bytes.empty());
  auto retained = builder_->Get(p.id);
  ASSERT_TRUE(retained.ok());

  // Independently recompute the XOR.
  std::size_t max_len = 0;
  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& id : ids) {
    auto record = images_.Lookup(id);
    streams.push_back(udf::Serializer::Serialize(*(*record)->image));
    max_len = std::max(max_len, streams.back().size());
  }
  std::vector<std::uint8_t> expected(max_len, 0);
  for (const auto& stream : streams) {
    gf256::XorAcc(expected, stream);
  }
  EXPECT_EQ((*retained)->bytes, expected);

  // The parity image is registered with DIM on the requested volume.
  auto record = images_.Lookup(p.id);
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE((*record)->parity);
  EXPECT_EQ((*record)->volume_index, 1);
}

TEST_F(ParityTest, Raid6BuildsPAndQ) {
  params_.parity_images = 2;
  builder_ = std::make_unique<ParityBuilder>(sim_, params_, &images_);
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(MakeImage(10 + i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 0));
  ASSERT_TRUE(parities.ok());
  ASSERT_EQ(parities->size(), 2u);
  EXPECT_TRUE((*parities)[0].id.ends_with("-P"));
  EXPECT_TRUE((*parities)[1].id.ends_with("-Q"));
  auto p = builder_->Get((*parities)[0].id);
  auto q = builder_->Get((*parities)[1].id);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(q.ok());
  EXPECT_NE((*p)->bytes, (*q)->bytes);

  // Q must be the classic sum of g^k * d_k even though it was produced by
  // the fused Horner sweep.
  std::size_t max_len = 0;
  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& id : ids) {
    auto record = images_.Lookup(id);
    streams.push_back(udf::Serializer::Serialize(*(*record)->image));
    max_len = std::max(max_len, streams.back().size());
  }
  std::vector<std::uint8_t> expected_p(max_len, 0);
  std::vector<std::uint8_t> expected_q(max_len, 0);
  for (std::size_t k = 0; k < streams.size(); ++k) {
    gf256::XorAccScalar(expected_p, streams[k]);
    gf256::MulAccScalar(expected_q, gf256::Pow2(static_cast<unsigned>(k)),
                        streams[k]);
  }
  EXPECT_EQ((*p)->bytes, expected_p);
  EXPECT_EQ((*q)->bytes, expected_q);
}

TEST_F(ParityTest, BuildSweepsEachMemberOnceEvenForPQ) {
  params_.parity_images = 2;
  builder_ = std::make_unique<ParityBuilder>(sim_, params_, &images_);
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(MakeImage(60 + i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 0));
  ASSERT_TRUE(parities.ok());
  // Single-pass pipeline: one fused kernel sweep per member stream, not one
  // per member per parity image.
  EXPECT_EQ(builder_->last_build_stream_passes(), 6);
}

TEST_F(ParityTest, Raid6DoubleLossRoundTripThroughFusedPath) {
  params_.parity_images = 2;
  builder_ = std::make_unique<ParityBuilder>(sim_, params_, &images_);
  std::vector<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(MakeImage(70 + i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 0));
  ASSERT_TRUE(parities.ok());
  auto p = builder_->Get((*parities)[0].id);
  auto q = builder_->Get((*parities)[1].id);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(q.ok());

  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& id : ids) {
    auto record = images_.Lookup(id);
    streams.push_back(udf::Serializer::Serialize(*(*record)->image));
  }
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      auto survivors = streams;
      std::vector<std::uint8_t> orig_a = survivors[a];
      std::vector<std::uint8_t> orig_b = survivors[b];
      survivors[a].clear();
      survivors[b].clear();
      auto recovered = ParityBuilder::RecoverTwo(survivors, (*p)->bytes,
                                                 (*q)->bytes, a, b);
      ASSERT_TRUE(recovered.ok()) << a << "," << b;
      EXPECT_TRUE(std::equal(orig_a.begin(), orig_a.end(),
                             recovered->first.begin()));
      EXPECT_TRUE(std::equal(orig_b.begin(), orig_b.end(),
                             recovered->second.begin()));
      // Both recovered streams must parse back to the lost images.
      auto parsed_a = udf::Serializer::Parse(recovered->first);
      auto parsed_b = udf::Serializer::Parse(recovered->second);
      ASSERT_TRUE(parsed_a.ok());
      ASSERT_TRUE(parsed_b.ok());
      EXPECT_EQ(parsed_a->id(), ids[a]);
      EXPECT_EQ(parsed_b->id(), ids[b]);
    }
  }
}

// When the P disc rots along with a data member, the Reed-Solomon Q
// parity alone still solves the single erasure.
TEST_F(ParityTest, RecoverOneFromQAloneWhenPIsUnreadable) {
  params_.parity_images = 2;
  builder_ = std::make_unique<ParityBuilder>(sim_, params_, &images_);
  std::vector<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(MakeImage(40 + i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 0));
  ASSERT_TRUE(parities.ok());
  auto q = builder_->Get((*parities)[1].id);
  ASSERT_TRUE(q.ok());

  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& id : ids) {
    auto record = images_.Lookup(id);
    streams.push_back(udf::Serializer::Serialize(*(*record)->image));
  }
  for (int missing = 0; missing < 5; ++missing) {
    auto survivors = streams;
    auto original = std::move(survivors[missing]);
    survivors[missing].clear();
    auto recovered =
        ParityBuilder::RecoverOneFromQ(survivors, (*q)->bytes, missing);
    ASSERT_TRUE(recovered.ok()) << "missing " << missing;
    ASSERT_GE(recovered->size(), original.size());
    EXPECT_TRUE(std::equal(original.begin(), original.end(),
                           recovered->begin()));
    auto parsed = udf::Serializer::Parse(*recovered);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->id(), ids[missing]);
  }
  // Guards mirror Recover(): occupied missing slot, double loss.
  auto survivors = streams;
  survivors[0].clear();
  EXPECT_FALSE(
      ParityBuilder::RecoverOneFromQ(survivors, (*q)->bytes, 1).ok());
  survivors[1].clear();
  EXPECT_FALSE(
      ParityBuilder::RecoverOneFromQ(survivors, (*q)->bytes, 0).ok());
}

TEST_F(ParityTest, RecoverReconstructsAnyMissingMember) {
  std::vector<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(MakeImage(20 + i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 0));
  ASSERT_TRUE(parities.ok());
  auto p_image = builder_->Get((*parities)[0].id);
  ASSERT_TRUE(p_image.ok());

  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& id : ids) {
    auto record = images_.Lookup(id);
    streams.push_back(udf::Serializer::Serialize(*(*record)->image));
  }

  for (int missing = 0; missing < 5; ++missing) {
    auto survivors = streams;
    auto original = std::move(survivors[missing]);
    survivors[missing].clear();
    auto recovered = ParityBuilder::Recover(
        survivors, {(*p_image)->bytes}, missing);
    ASSERT_TRUE(recovered.ok()) << "missing " << missing;
    // Zero-padded to the parity length; the prefix is the original.
    ASSERT_GE(recovered->size(), original.size());
    EXPECT_TRUE(std::equal(original.begin(), original.end(),
                           recovered->begin()));
    // And the recovered stream parses back to a valid image.
    auto parsed = udf::Serializer::Parse(*recovered);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->id(), ids[missing]);
  }
}

TEST_F(ParityTest, RecoverRejectsBadInputs) {
  std::vector<std::vector<std::uint8_t>> streams(3,
                                                 std::vector<std::uint8_t>{1});
  EXPECT_FALSE(ParityBuilder::Recover(streams, {}, 0).ok());
  EXPECT_FALSE(ParityBuilder::Recover(streams, {{1}}, 7).ok());
  // Missing slot must be empty.
  EXPECT_FALSE(ParityBuilder::Recover(streams, {{1}}, 1).ok());
  // A member stream longer than the P stream is a graceful error, not a
  // ROS_CHECK abort inside the XOR kernel.
  std::vector<std::vector<std::uint8_t>> long_member{{}, {1, 2, 3}, {1}};
  auto overlong = ParityBuilder::Recover(long_member, {{9}}, 0);
  ASSERT_FALSE(overlong.ok());
  EXPECT_EQ(overlong.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParityTest, BuildRequiresBufferedImages) {
  const std::string id = MakeImage(30);
  ROS_CHECK(images_.MarkBurned(id, mech::DiscAddress{}).ok());
  ROS_CHECK(images_.DropFromBuffer(id).ok());
  auto parities = sim_.RunUntilComplete(
      builder_->Build({id}, volume_ptrs_, 0));
  EXPECT_FALSE(parities.ok());
}

TEST_F(ParityTest, ParityIdsUniqueAcrossGenerations) {
  auto a = sim_.RunUntilComplete(
      builder_->Build({MakeImage(40)}, volume_ptrs_, 0));
  auto b = sim_.RunUntilComplete(
      builder_->Build({MakeImage(41)}, volume_ptrs_, 0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)[0].id, (*b)[0].id);
}

}  // namespace
}  // namespace ros::olfs
