// Unit tests for delayed parity generation and stream recovery (§4.7).
#include "src/olfs/parity.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/gf256.h"
#include "src/disk/block_device.h"
#include "src/olfs/bucket_manager.h"
#include "src/sim/simulator.h"
#include "src/udf/serializer.h"

namespace ros::olfs {
namespace {

class ParityTest : public ::testing::Test {
 protected:
  ParityTest() {
    params_.disc_capacity_override = 4 * kMiB;
    for (int i = 0; i < 2; ++i) {
      devices_.push_back(std::make_unique<disk::StorageDevice>(
          sim_, "d" + std::to_string(i), 256 * kMiB, disk::SsdPerf()));
      volumes_.push_back(std::make_unique<disk::Volume>(
          sim_, devices_.back().get(),
          disk::VolumeParams{.journal_metadata = false}));
    }
    volume_ptrs_ = {volumes_[0].get(), volumes_[1].get()};
    builder_ = std::make_unique<ParityBuilder>(sim_, params_, &images_);
  }

  // Registers a closed image with distinct content.
  std::string MakeImage(int n) {
    const std::string id = "img-" + std::to_string(n);
    auto image = std::make_shared<udf::Image>(id, 4 * kMiB);
    ROS_CHECK(image->AddFile("/data/f" + std::to_string(n),
                             std::vector<std::uint8_t>(100 + n * 13,
                                                       static_cast<std::uint8_t>(n)))
                  .ok());
    const std::string file = BucketManager::VolumeFileName(id);
    disk::Volume* volume = volume_ptrs_[n % 2];
    ROS_CHECK(sim_.RunUntilComplete(volume->Create(file)).ok());
    ROS_CHECK(sim_.RunUntilComplete(
                  volume->AppendSparse(file, {}, image->used_bytes())).ok());
    ROS_CHECK(images_.RegisterBucket(image, n % 2, file).ok());
    ROS_CHECK(images_.MarkClosed(id).ok());
    return id;
  }

  sim::Simulator sim_;
  OlfsParams params_;
  std::vector<std::unique_ptr<disk::StorageDevice>> devices_;
  std::vector<std::unique_ptr<disk::Volume>> volumes_;
  std::vector<disk::Volume*> volume_ptrs_;
  DiscImageStore images_;
  std::unique_ptr<ParityBuilder> builder_;
};

TEST_F(ParityTest, BuildProducesXorOfSerializedStreams) {
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(MakeImage(i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 1));
  ASSERT_TRUE(parities.ok());
  ASSERT_EQ(parities->size(), 1u);
  const ParityImage& p = (*parities)[0];
  EXPECT_EQ(p.member_ids, ids);

  // Independently recompute the XOR.
  std::size_t max_len = 0;
  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& id : ids) {
    auto record = images_.Lookup(id);
    streams.push_back(udf::Serializer::Serialize(*(*record)->image));
    max_len = std::max(max_len, streams.back().size());
  }
  std::vector<std::uint8_t> expected(max_len, 0);
  for (const auto& stream : streams) {
    gf256::XorAcc(expected, stream);
  }
  EXPECT_EQ(p.bytes, expected);

  // The parity image is registered with DIM on the requested volume.
  auto record = images_.Lookup(p.id);
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE((*record)->parity);
  EXPECT_EQ((*record)->volume_index, 1);
}

TEST_F(ParityTest, Raid6BuildsPAndQ) {
  params_.parity_images = 2;
  builder_ = std::make_unique<ParityBuilder>(sim_, params_, &images_);
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(MakeImage(10 + i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 0));
  ASSERT_TRUE(parities.ok());
  ASSERT_EQ(parities->size(), 2u);
  EXPECT_TRUE((*parities)[0].id.ends_with("-P"));
  EXPECT_TRUE((*parities)[1].id.ends_with("-Q"));
  EXPECT_NE((*parities)[0].bytes, (*parities)[1].bytes);
}

TEST_F(ParityTest, RecoverReconstructsAnyMissingMember) {
  std::vector<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(MakeImage(20 + i));
  }
  auto parities = sim_.RunUntilComplete(
      builder_->Build(ids, volume_ptrs_, 0));
  ASSERT_TRUE(parities.ok());

  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& id : ids) {
    auto record = images_.Lookup(id);
    streams.push_back(udf::Serializer::Serialize(*(*record)->image));
  }

  for (int missing = 0; missing < 5; ++missing) {
    auto survivors = streams;
    auto original = std::move(survivors[missing]);
    survivors[missing].clear();
    auto recovered = ParityBuilder::Recover(
        survivors, {(*parities)[0].bytes}, missing);
    ASSERT_TRUE(recovered.ok()) << "missing " << missing;
    // Zero-padded to the parity length; the prefix is the original.
    ASSERT_GE(recovered->size(), original.size());
    EXPECT_TRUE(std::equal(original.begin(), original.end(),
                           recovered->begin()));
    // And the recovered stream parses back to a valid image.
    auto parsed = udf::Serializer::Parse(*recovered);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->id(), ids[missing]);
  }
}

TEST_F(ParityTest, RecoverRejectsBadInputs) {
  std::vector<std::vector<std::uint8_t>> streams(3,
                                                 std::vector<std::uint8_t>{1});
  EXPECT_FALSE(ParityBuilder::Recover(streams, {}, 0).ok());
  EXPECT_FALSE(ParityBuilder::Recover(streams, {{1}}, 7).ok());
  // Missing slot must be empty.
  EXPECT_FALSE(ParityBuilder::Recover(streams, {{1}}, 1).ok());
}

TEST_F(ParityTest, BuildRequiresBufferedImages) {
  const std::string id = MakeImage(30);
  ROS_CHECK(images_.MarkBurned(id, mech::DiscAddress{}).ok());
  ROS_CHECK(images_.DropFromBuffer(id).ok());
  auto parities = sim_.RunUntilComplete(
      builder_->Build({id}, volume_ptrs_, 0));
  EXPECT_FALSE(parities.ok());
}

TEST_F(ParityTest, ParityIdsUniqueAcrossGenerations) {
  auto a = sim_.RunUntilComplete(
      builder_->Build({MakeImage(40)}, volume_ptrs_, 0));
  auto b = sim_.RunUntilComplete(
      builder_->Build({MakeImage(41)}, volume_ptrs_, 0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)[0].id, (*b)[0].id);
}

}  // namespace
}  // namespace ros::olfs
