#include "src/drive/speed_profile.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace ros::drive {
namespace {

// §5.4 / Fig 8: a full 25 GB burn averages 8.2X and takes ~675 s.
TEST(SpeedProfile25, AverageAndTotalMatchPaper) {
  auto profile = BurnSpeedProfile::For(DiscType::kBdr25);
  EXPECT_NEAR(profile.AverageSpeedX(), 8.2, 0.15);
  double seconds = profile.BurnSeconds(0, 25 * kGB, 25 * kGB);
  EXPECT_NEAR(seconds, 675.0, 10.0);
}

// Fig 8: the ramp starts at 1.6X on the inner tracks and reaches 12X.
TEST(SpeedProfile25, RampShape) {
  auto profile = BurnSpeedProfile::For(DiscType::kBdr25);
  EXPECT_DOUBLE_EQ(profile.SpeedAt(0.0), 1.6);
  EXPECT_DOUBLE_EQ(profile.SpeedAt(0.99), 12.0);
  // Monotonically non-decreasing through the zones.
  double prev = 0;
  for (double p = 0.0; p < 1.0; p += 0.01) {
    double s = profile.SpeedAt(p);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

// §5.4 / Fig 10: 100 GB burns at ~6X with fail-safe dips to 4X; a full
// disc takes ~3757 s and the average speed is ~5.9X.
TEST(SpeedProfile100, AverageAndTotalMatchPaper) {
  auto profile = BurnSpeedProfile::For(DiscType::kBdr100, /*seed=*/42);
  EXPECT_NEAR(profile.AverageSpeedX(), 5.9, 0.1);
  double seconds = profile.BurnSeconds(0, 100 * kGB, 100 * kGB);
  EXPECT_NEAR(seconds, 3757.0, 40.0);
}

TEST(SpeedProfile100, OnlySixAndFourXSpeeds) {
  auto profile = BurnSpeedProfile::For(DiscType::kBdr100, /*seed=*/7);
  bool saw_dip = false;
  for (double p = 0.0; p < 1.0; p += 0.001) {
    double s = profile.SpeedAt(p);
    EXPECT_TRUE(s == 6.0 || s == 4.0) << s;
    saw_dip |= (s == 4.0);
  }
  EXPECT_TRUE(saw_dip);
}

TEST(SpeedProfile100, DipsAreSeedDeterministic) {
  auto a = BurnSpeedProfile::For(DiscType::kBdr100, 9);
  auto b = BurnSpeedProfile::For(DiscType::kBdr100, 9);
  auto c = BurnSpeedProfile::For(DiscType::kBdr100, 10);
  ASSERT_EQ(a.zones().size(), b.zones().size());
  for (std::size_t i = 0; i < a.zones().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.zones()[i].progress_end, b.zones()[i].progress_end);
  }
  // Different seeds place dips differently.
  bool differs = a.zones().size() != c.zones().size();
  for (std::size_t i = 0; !differs && i < a.zones().size(); ++i) {
    differs = a.zones()[i].progress_end != c.zones()[i].progress_end;
  }
  EXPECT_TRUE(differs);
}

TEST(SpeedProfileRewritable, Constant2x) {
  auto profile = BurnSpeedProfile::Rewritable();
  EXPECT_DOUBLE_EQ(profile.SpeedAt(0.1), 2.0);
  EXPECT_DOUBLE_EQ(profile.AverageSpeedX(), 2.0);
}

// Partial burns: time is additive over sub-ranges.
TEST(SpeedProfile, BurnSecondsIsAdditive) {
  auto profile = BurnSpeedProfile::For(DiscType::kBdr25);
  const std::uint64_t cap = 25 * kGB;
  double whole = profile.BurnSeconds(0, cap, cap);
  double first = profile.BurnSeconds(0, cap / 3, cap);
  double second = profile.BurnSeconds(cap / 3, cap - cap / 3, cap);
  EXPECT_NEAR(first + second, whole, 1e-6);
}

// An append burn starting mid-disc runs in the faster outer zones.
TEST(SpeedProfile, AppendBurnsFasterInOuterZones) {
  auto profile = BurnSpeedProfile::For(DiscType::kBdr25);
  const std::uint64_t cap = 25 * kGB;
  double inner = profile.BurnSeconds(0, 5 * kGB, cap);
  double outer = profile.BurnSeconds(20 * kGB, 5 * kGB, cap);
  EXPECT_LT(outer, inner);
}

// Table 2 read speeds.
TEST(ReadSpeed, MatchesTable2) {
  EXPECT_DOUBLE_EQ(ReadSpeedBytesPerSec(DiscType::kBdr25), 24.1e6);
  EXPECT_DOUBLE_EQ(ReadSpeedBytesPerSec(DiscType::kBdr100), 18.0e6);
}

}  // namespace
}  // namespace ros::drive
