// Tests of the RAID controller write-back cache and the sparse/discard
// I/O paths (the timing machinery behind PB-scale experiments).
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/disk/raid.h"
#include "src/disk/volume.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::disk {
namespace {

using sim::Seconds;
using sim::ToMillis;
using sim::ToSeconds;

struct Rig {
  explicit Rig(int n = 7, std::uint64_t cap = 2 * kGiB) {
    for (int i = 0; i < n; ++i) {
      devices.push_back(std::make_unique<StorageDevice>(
          sim, "hdd" + std::to_string(i), cap, HddPerf()));
    }
    std::vector<StorageDevice*> ptrs;
    for (auto& d : devices) {
      ptrs.push_back(d.get());
    }
    volume = std::make_unique<RaidVolume>(sim, RaidLevel::kRaid5, ptrs);
  }

  // Destroy suspended background coroutines (destage writes) while the
  // devices they borrow are still alive.
  ~Rig() { sim.Shutdown(); }

  sim::Simulator sim;
  std::vector<std::unique_ptr<StorageDevice>> devices;
  std::unique_ptr<RaidVolume> volume;
};

TEST(RaidCache, SmallWriteAcksAtControllerSpeed) {
  Rig rig;
  sim::TimePoint t0 = rig.sim.now();
  ASSERT_TRUE(rig.sim
                  .RunUntilComplete(rig.volume->Write(
                      0, std::vector<std::uint8_t>(4 * kKiB, 1)))
                  .ok());
  // Millisecond-scale ack, not an 8 ms-per-spindle read-modify-write.
  EXPECT_LT(ToMillis(rig.sim.now() - t0), 1.0);
  EXPECT_GT(rig.volume->dirty_bytes(), 0u);
  rig.sim.Run();  // destage drains
  EXPECT_EQ(rig.volume->dirty_bytes(), 0u);
}

TEST(RaidCache, CachedDataIsReadableImmediately) {
  Rig rig;
  std::vector<std::uint8_t> data{9, 8, 7, 6};
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(1000, data)).ok());
  // Before destaging completes, reads must already see the bytes.
  auto read = rig.sim.RunUntilComplete(rig.volume->Read(1000, 4));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(RaidCache, RecentWritesReadBackAtCacheSpeed) {
  Rig rig;
  ASSERT_TRUE(rig.sim
                  .RunUntilComplete(rig.volume->Write(
                      0, std::vector<std::uint8_t>(64 * kKiB, 2)))
                  .ok());
  rig.sim.Run();
  sim::TimePoint t0 = rig.sim.now();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Read(0, 64 * kKiB)).ok());
  EXPECT_LT(ToMillis(rig.sim.now() - t0), 1.0);  // controller cache hit
}

TEST(RaidCache, DirtyLimitThrottlesToSpindleRate) {
  Rig rig;
  // Push well past the dirty limit; sustained rate converges to the
  // destage (spindle) rate, not the controller ack rate.
  const std::uint64_t total = 2 * RaidVolume::kCacheDirtyLimit;
  sim::TimePoint t0 = rig.sim.now();
  for (std::uint64_t done = 0; done < total; done += 8 * kMiB) {
    ASSERT_TRUE(rig.sim
                    .RunUntilComplete(rig.volume->Write(
                        done, std::vector<std::uint8_t>(8 * kMiB, 3)))
                    .ok());
  }
  const double rate =
      static_cast<double>(total) / ToSeconds(rig.sim.now() - t0);
  EXPECT_LT(rate, 1.6e9);  // way below the 2.5 GB/s controller rate
  EXPECT_GT(rate, 0.6e9);  // but still near the volume's spindle rate
}

TEST(RaidCache, DisabledCacheTakesSynchronousPath) {
  Rig rig;
  rig.volume->set_write_cache(false);
  sim::TimePoint t0 = rig.sim.now();
  ASSERT_TRUE(rig.sim
                  .RunUntilComplete(rig.volume->Write(
                      0, std::vector<std::uint8_t>(4 * kKiB, 1)))
                  .ok());
  // Full read-modify-write against the spindles: tens of ms.
  EXPECT_GT(ToMillis(rig.sim.now() - t0), 8.0);
  EXPECT_EQ(rig.volume->dirty_bytes(), 0u);
}

TEST(RaidCache, DegradedVolumeBypassesCache) {
  Rig rig;
  rig.devices[0]->Fail();
  std::vector<std::uint8_t> data(4 * kKiB, 5);
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(0, data)).ok());
  EXPECT_EQ(rig.volume->dirty_bytes(), 0u);  // synchronous path used
  auto read = rig.sim.RunUntilComplete(rig.volume->Read(0, 4 * kKiB));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(RaidCache, CachedWritesSurviveDeviceFailureAfterDestage) {
  Rig rig;
  Rng rng(5);
  std::vector<std::uint8_t> data(256 * kKiB);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(0, data)).ok());
  rig.sim.Run();  // destage everything
  rig.devices[3]->Fail();
  auto read = rig.sim.RunUntilComplete(rig.volume->Read(0, data.size()));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);  // parity was written through the cache path too
}

// --- sparse/discard paths ---

TEST(SparseIo, AppendSparseChargesFullTimeStoresLittle) {
  Rig rig;
  Volume volume(rig.sim, rig.volume.get(),
                VolumeParams{.journal_metadata = false});
  ASSERT_TRUE(rig.sim.RunUntilComplete(volume.Create("/big")).ok());
  sim::TimePoint t0 = rig.sim.now();
  ASSERT_TRUE(rig.sim
                  .RunUntilComplete(volume.AppendSparse(
                      "/big", std::vector<std::uint8_t>{1, 2, 3}, 600 * kMB))
                  .ok());
  // 600 MB at ~1 GB/s: hundreds of ms of simulated time...
  EXPECT_GT(ToSeconds(rig.sim.now() - t0), 0.4);
  // ...while the devices stored almost nothing.
  EXPECT_EQ(*volume.FileSize("/big"), 600 * kMB);
  auto head = rig.sim.RunUntilComplete(volume.Read("/big", 0, 3));
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, (std::vector<std::uint8_t>{1, 2, 3}));
  auto tail = rig.sim.RunUntilComplete(volume.Read("/big", 600 * kMB - 4, 4));
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, std::vector<std::uint8_t>(4, 0));
}

TEST(SparseIo, ReadDiscardMatchesRealReadTiming) {
  Rig rig;
  Volume volume(rig.sim, rig.volume.get(),
                VolumeParams{.journal_metadata = false});
  ASSERT_TRUE(rig.sim.RunUntilComplete(volume.Create("/f")).ok());
  ASSERT_TRUE(rig.sim
                  .RunUntilComplete(volume.AppendSparse("/f", {}, 200 * kMB))
                  .ok());
  sim::TimePoint t0 = rig.sim.now();
  ASSERT_TRUE(rig.sim.RunUntilComplete(
                  volume.ReadDiscard("/f", 0, 200 * kMB)).ok());
  const double discard_seconds = ToSeconds(rig.sim.now() - t0);
  // ~200 MB at ~1.2 GB/s.
  EXPECT_NEAR(discard_seconds, 0.2 / 1.2, 0.05);
}

TEST(SparseIo, SequentialDiscardStreamsWithoutSeekStorms) {
  Rig rig;
  Volume volume(rig.sim, rig.volume.get(),
                VolumeParams{.journal_metadata = false});
  ASSERT_TRUE(rig.sim.RunUntilComplete(volume.Create("/s")).ok());
  // 128 sequential 1 MB sparse appends ~ one smooth 128 MB stream.
  sim::TimePoint t0 = rig.sim.now();
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(rig.sim
                    .RunUntilComplete(volume.AppendSparse("/s", {}, 1 * kMB))
                    .ok());
  }
  const double rate = 128e6 / ToSeconds(rig.sim.now() - t0);
  EXPECT_GT(rate, 0.8e9);  // no per-append positioning penalty
}

}  // namespace
}  // namespace ros::disk
