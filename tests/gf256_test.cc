#include "src/common/gf256.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace ros::gf256 {
namespace {

std::vector<std::uint8_t> RandomBuffer(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

// Sizes that exercise every head/word/tail combination of the word-sliced
// kernels: empty, sub-word, word-multiple, and odd lengths around the 8- and
// 32-byte unroll boundaries.
const std::size_t kOddSizes[] = {0,  1,  7,  8,  9,  15, 16, 17,  31,
                                 32, 33, 63, 64, 65, 255, 257, 4096, 4097};

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(Mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, MulCommutative) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                Mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    std::uint8_t inv = Inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256, DivUndoesMul) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      std::uint8_t prod = Mul(static_cast<std::uint8_t>(a),
                              static_cast<std::uint8_t>(b));
      EXPECT_EQ(Div(prod, static_cast<std::uint8_t>(b)), a);
    }
  }
}

TEST(Gf256, GeneratorPowersCycle) {
  EXPECT_EQ(Pow2(0), 1);
  EXPECT_EQ(Pow2(1), 2);
  EXPECT_EQ(Pow2(255), 1);  // g^255 = 1
  // All powers 0..254 are distinct (g is primitive).
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    std::uint8_t v = Pow2(i);
    EXPECT_FALSE(seen[v]) << "repeat at " << i;
    seen[v] = true;
  }
}

TEST(Gf256, MulDistributesOverXor) {
  for (int a = 1; a < 256; a += 13) {
    for (int x = 0; x < 256; x += 17) {
      for (int y = 0; y < 256; y += 19) {
        EXPECT_EQ(
            Mul(static_cast<std::uint8_t>(a),
                static_cast<std::uint8_t>(x ^ y)),
            Mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(x)) ^
                Mul(static_cast<std::uint8_t>(a),
                    static_cast<std::uint8_t>(y)));
      }
    }
  }
}

TEST(Gf256, BufferOps) {
  std::vector<std::uint8_t> acc(8, 0);
  std::vector<std::uint8_t> in{1, 2, 3, 4, 5, 6, 7, 8};
  XorAcc(acc, in);
  EXPECT_EQ(acc, in);
  XorAcc(acc, in);
  EXPECT_EQ(acc, std::vector<std::uint8_t>(8, 0));

  MulAcc(acc, 3, in);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(acc[i], Mul(3, in[i]));
  }
  Scale(acc, Inv(3));
  EXPECT_EQ(acc, in);
}

TEST(Gf256, Mul2MatchesMulByTwo) {
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(Mul2(static_cast<std::uint8_t>(x)),
              Mul(2, static_cast<std::uint8_t>(x)))
        << x;
  }
}

// Differential: the word-sliced kernels must be byte-identical to the scalar
// reference for every size and (for MulAcc/Scale) every coefficient class,
// including unaligned spans.
TEST(Gf256Differential, XorAccAllSizes) {
  for (std::size_t n : kOddSizes) {
    auto in = RandomBuffer(n, n * 3 + 1);
    auto fast = RandomBuffer(n, n * 3 + 2);
    auto ref = fast;
    XorAcc(fast, in);
    XorAccScalar(ref, in);
    EXPECT_EQ(fast, ref) << "size " << n;
  }
}

TEST(Gf256Differential, MulAccAllSizesAndCoefficients) {
  for (std::size_t n : kOddSizes) {
    for (int c : {0, 1, 2, 3, 0x1D, 0x80, 0xFF}) {
      auto in = RandomBuffer(n, n * 7 + static_cast<std::uint64_t>(c));
      auto fast = RandomBuffer(n, n * 7 + static_cast<std::uint64_t>(c) + 1);
      auto ref = fast;
      MulAcc(fast, static_cast<std::uint8_t>(c), in);
      MulAccScalar(ref, static_cast<std::uint8_t>(c), in);
      EXPECT_EQ(fast, ref) << "size " << n << " coeff " << c;
    }
  }
}

TEST(Gf256Differential, ScaleAllCoefficients) {
  for (int c = 0; c < 256; ++c) {
    auto fast = RandomBuffer(513, static_cast<std::uint64_t>(c) + 11);
    auto ref = fast;
    Scale(fast, static_cast<std::uint8_t>(c));
    ScaleScalar(ref, static_cast<std::uint8_t>(c));
    EXPECT_EQ(fast, ref) << "coeff " << c;
  }
}

TEST(Gf256Differential, UnalignedSpans) {
  // Start the spans at every offset 0..7 inside the allocation so the word
  // loop runs over genuinely misaligned addresses.
  auto in = RandomBuffer(4096 + 8, 21);
  auto out = RandomBuffer(4096 + 8, 22);
  for (std::size_t off = 0; off < 8; ++off) {
    std::span<const std::uint8_t> in_s{in.data() + off, 4093};
    auto fast = out;
    auto ref = out;
    XorAcc(std::span{fast.data() + off, 4093}, in_s);
    XorAccScalar(std::span{ref.data() + off, 4093}, in_s);
    EXPECT_EQ(fast, ref) << "xor offset " << off;
    fast = out;
    ref = out;
    MulAcc(std::span{fast.data() + off, 4093}, 0xC3, in_s);
    MulAccScalar(std::span{ref.data() + off, 4093}, 0xC3, in_s);
    EXPECT_EQ(fast, ref) << "mulacc offset " << off;
  }
}

TEST(Gf256Differential, PQAccAllSizesWithShorterMember) {
  // q longer than the member stream: the tail must keep doubling.
  for (std::size_t n : kOddSizes) {
    for (std::size_t pad : {std::size_t{0}, std::size_t{5}, std::size_t{64}}) {
      auto in = RandomBuffer(n, n + pad + 31);
      auto p_fast = RandomBuffer(n + pad, n + pad + 32);
      auto q_fast = RandomBuffer(n + pad, n + pad + 33);
      auto p_ref = p_fast;
      auto q_ref = q_fast;
      PQAcc(p_fast, q_fast, in);
      PQAccScalar(p_ref, q_ref, in);
      EXPECT_EQ(p_fast, p_ref) << "size " << n << " pad " << pad;
      EXPECT_EQ(q_fast, q_ref) << "size " << n << " pad " << pad;
    }
  }
}

// Feeding member streams last-to-first through the fused Horner kernel must
// produce exactly P = xor(d_k) and Q = sum g^k d_k — the classic two-pass
// construction.
TEST(Gf256Property, PQAccHornerMatchesTwoPass) {
  constexpr int kMembers = 11;
  std::vector<std::vector<std::uint8_t>> streams;
  std::size_t max_len = 0;
  for (int k = 0; k < kMembers; ++k) {
    // Mixed lengths, several odd.
    streams.push_back(RandomBuffer(100 + 37 * static_cast<std::size_t>(k) +
                                       static_cast<std::size_t>(k % 3),
                                   static_cast<std::uint64_t>(k) + 70));
    max_len = std::max(max_len, streams.back().size());
  }
  std::vector<std::uint8_t> p(max_len, 0), q(max_len, 0);
  for (int k = kMembers - 1; k >= 0; --k) {
    PQAcc(p, q, streams[static_cast<std::size_t>(k)]);
  }
  std::vector<std::uint8_t> p2(max_len, 0), q2(max_len, 0);
  for (int k = 0; k < kMembers; ++k) {
    XorAccScalar(p2, streams[static_cast<std::size_t>(k)]);
    MulAccScalar(q2, Pow2(static_cast<unsigned>(k)),
                 streams[static_cast<std::size_t>(k)]);
  }
  EXPECT_EQ(p, p2);
  EXPECT_EQ(q, q2);
}

TEST(Gf256Property, SolveTwoRecoversRandomPairs) {
  Rng rng(123);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 1 + rng.Below(700);
    const unsigned a = static_cast<unsigned>(rng.Below(20));
    unsigned b = static_cast<unsigned>(rng.Below(20));
    if (b == a) {
      b = a + 1;
    }
    auto da = RandomBuffer(n, iter * 2 + 500);
    auto db = RandomBuffer(n, iter * 2 + 501);
    // pp = da ^ db; qp = g^a da ^ g^b db.
    std::vector<std::uint8_t> pp(n, 0), qp(n, 0);
    XorAccScalar(pp, da);
    XorAccScalar(pp, db);
    MulAccScalar(qp, Pow2(a), da);
    MulAccScalar(qp, Pow2(b), db);
    std::vector<std::uint8_t> ra(n), rb(n), ra_ref(n), rb_ref(n);
    SolveTwo(ra, rb, pp, qp, Pow2(a), Pow2(b));
    SolveTwoScalar(ra_ref, rb_ref, pp, qp, Pow2(a), Pow2(b));
    EXPECT_EQ(ra, da) << "iter " << iter;
    EXPECT_EQ(rb, db) << "iter " << iter;
    EXPECT_EQ(ra, ra_ref) << "iter " << iter;
    EXPECT_EQ(rb, rb_ref) << "iter " << iter;
  }
}

TEST(Gf256Property, RandomizedDifferentialSweep) {
  Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = rng.Below(1025);
    const auto coeff = static_cast<std::uint8_t>(rng.Next());
    auto in = RandomBuffer(n, iter * 3 + 1000);
    auto acc = RandomBuffer(n, iter * 3 + 1001);
    auto q = RandomBuffer(n, iter * 3 + 1002);

    auto acc_ref = acc;
    MulAcc(acc, coeff, in);
    MulAccScalar(acc_ref, coeff, in);
    ASSERT_EQ(acc, acc_ref) << "iter " << iter;

    auto p_ref = acc;
    auto q_ref = q;
    auto p_fast = acc;
    auto q_fast = q;
    PQAcc(p_fast, q_fast, in);
    PQAccScalar(p_ref, q_ref, in);
    ASSERT_EQ(p_fast, p_ref) << "iter " << iter;
    ASSERT_EQ(q_fast, q_ref) << "iter " << iter;
  }
}

}  // namespace
}  // namespace ros::gf256
