#include "src/common/gf256.h"

#include <gtest/gtest.h>

#include <vector>

namespace ros::gf256 {
namespace {

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(Mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, MulCommutative) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                Mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    std::uint8_t inv = Inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256, DivUndoesMul) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      std::uint8_t prod = Mul(static_cast<std::uint8_t>(a),
                              static_cast<std::uint8_t>(b));
      EXPECT_EQ(Div(prod, static_cast<std::uint8_t>(b)), a);
    }
  }
}

TEST(Gf256, GeneratorPowersCycle) {
  EXPECT_EQ(Pow2(0), 1);
  EXPECT_EQ(Pow2(1), 2);
  EXPECT_EQ(Pow2(255), 1);  // g^255 = 1
  // All powers 0..254 are distinct (g is primitive).
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    std::uint8_t v = Pow2(i);
    EXPECT_FALSE(seen[v]) << "repeat at " << i;
    seen[v] = true;
  }
}

TEST(Gf256, MulDistributesOverXor) {
  for (int a = 1; a < 256; a += 13) {
    for (int x = 0; x < 256; x += 17) {
      for (int y = 0; y < 256; y += 19) {
        EXPECT_EQ(
            Mul(static_cast<std::uint8_t>(a),
                static_cast<std::uint8_t>(x ^ y)),
            Mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(x)) ^
                Mul(static_cast<std::uint8_t>(a),
                    static_cast<std::uint8_t>(y)));
      }
    }
  }
}

TEST(Gf256, BufferOps) {
  std::vector<std::uint8_t> acc(8, 0);
  std::vector<std::uint8_t> in{1, 2, 3, 4, 5, 6, 7, 8};
  XorAcc(acc, in);
  EXPECT_EQ(acc, in);
  XorAcc(acc, in);
  EXPECT_EQ(acc, std::vector<std::uint8_t>(8, 0));

  MulAcc(acc, 3, in);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(acc[i], Mul(3, in[i]));
  }
  Scale(acc, Inv(3));
  EXPECT_EQ(acc, in);
}

}  // namespace
}  // namespace ros::gf256
