// Audit manifest codec + Merkle math (DESIGN.md §5j). Pure unit tests:
// the physical (sampled-read) verification path lives in
// preservation_test.cc; here we prove the hash tree behaves and that the
// binary parser fails *cleanly* on arbitrary damage — the same contract
// the fuzz harness (FuzzAuditManifest) hammers continuously.
#include "src/olfs/audit.h"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace ros::olfs {
namespace {

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

AuditManifest SampleManifest() {
  AuditManifest manifest;
  manifest.tray_index = 7;
  manifest.leaf_bytes = 1024;
  for (int m = 0; m < 3; ++m) {
    AuditMember member;
    member.image_id = "img-" + std::to_string(m);
    const auto stream = RandomBytes(3000 + m * 500, 40 + m);
    member.stream_bytes = stream.size();
    member.leaves = AuditLeafHashes(
        std::span<const std::uint8_t>(stream.data(), stream.size()),
        manifest.leaf_bytes);
    member.root = AuditMerkleRoot(member.leaves);
    manifest.members.push_back(std::move(member));
  }
  // An empty member (zero-byte image) must still chain.
  AuditMember empty;
  empty.image_id = "img-empty";
  empty.root = AuditMerkleRoot(empty.leaves);
  manifest.members.push_back(std::move(empty));
  manifest.array_root = AuditArrayRoot(manifest);
  return manifest;
}

TEST(AuditMerkle, LeafHashingCoversEveryChunkBoundary) {
  const auto stream = RandomBytes(2500, 1);
  const std::span<const std::uint8_t> view(stream.data(), stream.size());
  // 1024-byte leaves over 2500 bytes: 1024 + 1024 + 452.
  auto leaves = AuditLeafHashes(view, 1024);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0], AuditHashLeaf(view.subspan(0, 1024)));
  EXPECT_EQ(leaves[1], AuditHashLeaf(view.subspan(1024, 1024)));
  EXPECT_EQ(leaves[2], AuditHashLeaf(view.subspan(2048, 452)));
  // Exact multiple: no ragged tail leaf.
  EXPECT_EQ(AuditLeafHashes(view.subspan(0, 2048), 1024).size(), 2u);
  // leaf_bytes=0 is the disabled configuration: no leaves at all.
  EXPECT_TRUE(AuditLeafHashes(view, 0).empty());
}

TEST(AuditMerkle, RootPropertiesHoldForAllShapes) {
  // Empty tree: fixed sentinel.
  EXPECT_EQ(AuditMerkleRoot({}), 0xCBF29CE484222325ull);
  // Single leaf is its own root.
  EXPECT_EQ(AuditMerkleRoot({42}), 42u);
  // Order matters: swapping leaves changes the root.
  EXPECT_NE(AuditMerkleRoot({1, 2}), AuditMerkleRoot({2, 1}));
  // Any single-leaf change propagates to the root, including the odd
  // promoted node.
  const std::vector<std::uint64_t> base = {10, 20, 30, 40, 50};
  const std::uint64_t root = AuditMerkleRoot(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::vector<std::uint64_t> flipped = base;
    flipped[i] ^= 1;
    EXPECT_NE(AuditMerkleRoot(flipped), root) << "leaf " << i;
  }
  // Deterministic.
  EXPECT_EQ(AuditMerkleRoot(base), root);
}

TEST(AuditCodec, RoundTripPreservesEveryField) {
  const AuditManifest manifest = SampleManifest();
  const std::vector<std::uint8_t> blob = SerializeAuditManifest(manifest);
  auto parsed = ParseAuditManifest(
      std::span<const std::uint8_t>(blob.data(), blob.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tray_index, manifest.tray_index);
  EXPECT_EQ(parsed->leaf_bytes, manifest.leaf_bytes);
  EXPECT_EQ(parsed->array_root, manifest.array_root);
  ASSERT_EQ(parsed->members.size(), manifest.members.size());
  for (std::size_t m = 0; m < manifest.members.size(); ++m) {
    EXPECT_EQ(parsed->members[m].image_id, manifest.members[m].image_id);
    EXPECT_EQ(parsed->members[m].stream_bytes,
              manifest.members[m].stream_bytes);
    EXPECT_EQ(parsed->members[m].leaves, manifest.members[m].leaves);
    EXPECT_EQ(parsed->members[m].root, manifest.members[m].root);
  }
  // Serialize(Parse(x)) == x: the codec is canonical.
  EXPECT_EQ(SerializeAuditManifest(*parsed), blob);
}

TEST(AuditCodec, EveryTruncationFailsCleanly) {
  const std::vector<std::uint8_t> blob =
      SerializeAuditManifest(SampleManifest());
  for (std::size_t n = 0; n < blob.size(); ++n) {
    auto parsed = ParseAuditManifest(
        std::span<const std::uint8_t>(blob.data(), n));
    ASSERT_FALSE(parsed.ok()) << "prefix " << n;
    const StatusCode code = parsed.status().code();
    EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                code == StatusCode::kDataLoss)
        << "prefix " << n << ": " << parsed.status().ToString();
  }
}

TEST(AuditCodec, EveryBitflipIsDetected) {
  const std::vector<std::uint8_t> blob =
      SerializeAuditManifest(SampleManifest());
  for (std::size_t at = 0; at < blob.size(); ++at) {
    std::vector<std::uint8_t> bad = blob;
    bad[at] ^= 0x01;
    auto parsed = ParseAuditManifest(
        std::span<const std::uint8_t>(bad.data(), bad.size()));
    ASSERT_FALSE(parsed.ok()) << "flip at " << at;
    const StatusCode code = parsed.status().code();
    EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                code == StatusCode::kDataLoss)
        << "flip at " << at << ": " << parsed.status().ToString();
  }
}

// A manifest whose stored hashes do not recompute proves nothing, even
// when its CRC is intact: the parser must reject it as data loss.
TEST(AuditCodec, InternallyInconsistentRootsAreDataLoss) {
  AuditManifest lying = SampleManifest();
  lying.members[0].root ^= 1;  // no longer matches its own leaves
  lying.array_root = AuditArrayRoot(lying);  // keep the outer chain valid
  const std::vector<std::uint8_t> blob = SerializeAuditManifest(lying);
  auto parsed = ParseAuditManifest(
      std::span<const std::uint8_t>(blob.data(), blob.size()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);

  AuditManifest wrong_array = SampleManifest();
  wrong_array.array_root ^= 1;
  const std::vector<std::uint8_t> blob2 =
      SerializeAuditManifest(wrong_array);
  auto parsed2 = ParseAuditManifest(
      std::span<const std::uint8_t>(blob2.data(), blob2.size()));
  ASSERT_FALSE(parsed2.ok());
  EXPECT_EQ(parsed2.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace ros::olfs
