#include "src/mech/library.h"

#include <gtest/gtest.h>

#include "src/mech/geometry.h"
#include "src/mech/plc.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::mech {
namespace {

using sim::Seconds;
using sim::ToSeconds;

class MechLibraryTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  LibraryConfig config_;
};

// Measures one operation's duration in simulated seconds.
double Timed(sim::Simulator& sim, sim::Task<Status> op) {
  sim::TimePoint start = sim.now();
  Status status = sim.RunUntilComplete(std::move(op));
  EXPECT_TRUE(status.ok()) << status.ToString();
  return ToSeconds(sim.now() - start);
}

// Table 3: disc array load at the uppermost layer takes 68.7 s.
TEST_F(MechLibraryTest, LoadUppermostLayerMatchesTable3) {
  Library lib(sim_, config_);
  // Slot 1 so a representative single-slot rotation is included.
  double t = Timed(sim_, lib.LoadArray({0, 0, 1}, 0));
  EXPECT_NEAR(t, 68.7, 0.3);
}

// Table 3: disc array load at the lowest layer takes 73.2 s.
TEST_F(MechLibraryTest, LoadLowestLayerMatchesTable3) {
  Library lib(sim_, config_);
  double t = Timed(sim_, lib.LoadArray({0, 84, 1}, 0));
  EXPECT_NEAR(t, 73.2, 0.3);
}

// Table 3: unload at the uppermost layer takes 81.7 s.
TEST_F(MechLibraryTest, UnloadUppermostLayerMatchesTable3) {
  Library lib(sim_, config_);
  ASSERT_TRUE(sim_.RunUntilComplete(lib.LoadArray({0, 0, 1}, 0)).ok());
  double t = Timed(sim_, lib.UnloadArray(0));
  EXPECT_NEAR(t, 81.7, 0.3);
}

// Table 3: unload at the lowest layer takes 86.5 s.
TEST_F(MechLibraryTest, UnloadLowestLayerMatchesTable3) {
  Library lib(sim_, config_);
  ASSERT_TRUE(sim_.RunUntilComplete(lib.LoadArray({0, 84, 1}, 0)).ok());
  double t = Timed(sim_, lib.UnloadArray(0));
  EXPECT_NEAR(t, 86.5, 0.3);
}

TEST_F(MechLibraryTest, LoadUpdatesPlacementState) {
  Library lib(sim_, config_);
  TrayAddress tray{0, 10, 2};
  EXPECT_TRUE(lib.TrayOccupied(tray));
  ASSERT_TRUE(sim_.RunUntilComplete(lib.LoadArray(tray, 1)).ok());
  EXPECT_FALSE(lib.TrayOccupied(tray));
  ASSERT_TRUE(lib.bay(1).loaded_from.has_value());
  EXPECT_EQ(*lib.bay(1).loaded_from, tray);
  EXPECT_EQ(lib.loads_completed(), 1u);
}

TEST_F(MechLibraryTest, UnloadReturnsArrayHome) {
  Library lib(sim_, config_);
  TrayAddress tray{1, 42, 3};
  ASSERT_TRUE(sim_.RunUntilComplete(lib.LoadArray(tray, 0)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(lib.UnloadArray(0)).ok());
  EXPECT_TRUE(lib.TrayOccupied(tray));
  EXPECT_FALSE(lib.bay(0).loaded_from.has_value());
  EXPECT_EQ(lib.unloads_completed(), 1u);
}

TEST_F(MechLibraryTest, LoadFromEmptyTrayFails) {
  Library lib(sim_, config_);
  TrayAddress tray{0, 5, 0};
  lib.SetTrayOccupied(tray, false);
  Status status = sim_.RunUntilComplete(lib.LoadArray(tray, 0));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(MechLibraryTest, LoadIntoOccupiedBayFails) {
  Library lib(sim_, config_);
  ASSERT_TRUE(sim_.RunUntilComplete(lib.LoadArray({0, 0, 0}, 0)).ok());
  Status status = sim_.RunUntilComplete(lib.LoadArray({0, 1, 0}, 0));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(MechLibraryTest, UnloadEmptyBayFails) {
  Library lib(sim_, config_);
  Status status = sim_.RunUntilComplete(lib.UnloadArray(0));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(MechLibraryTest, InvalidAddressesRejected) {
  Library lib(sim_, config_);
  EXPECT_EQ(sim_.RunUntilComplete(lib.LoadArray({5, 0, 0}, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sim_.RunUntilComplete(lib.LoadArray({0, 0, 0}, 9)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sim_.RunUntilComplete(lib.UnloadArray(-1)).code(),
            StatusCode::kInvalidArgument);
}

// §3.2: preparing the load in advance (pre-rotation, fan-out, arm descent)
// saves up to ~10 s; for the lowest layer the saving is rotate (0.8) +
// fan-out (2.4) + descent (4.5) ~= 7.7 s.
TEST_F(MechLibraryTest, PreparedLoadSkipsConveyanceSteps) {
  Library lib(sim_, config_);
  TrayAddress tray{0, 84, 1};
  ASSERT_TRUE(sim_.RunUntilComplete(lib.PrepareLoad(tray)).ok());
  double prepared = Timed(sim_, lib.LoadArray(tray, 0));
  EXPECT_NEAR(prepared, 73.2 - 7.7, 0.3);
}

TEST_F(MechLibraryTest, TwoRollersOperateConcurrently) {
  config_.drive_sets = 2;
  Library lib(sim_, config_);
  sim::TimePoint start = sim_.now();
  Status s1;
  Status s2;
  sim_.Spawn([](Library* l, Status* out) -> sim::Task<void> {
    *out = co_await l->LoadArray({0, 0, 1}, 0);
  }(&lib, &s1));
  sim_.Spawn([](Library* l, Status* out) -> sim::Task<void> {
    *out = co_await l->LoadArray({1, 0, 1}, 1);
  }(&lib, &s2));
  sim_.Run();
  EXPECT_TRUE(s1.ok());
  EXPECT_TRUE(s2.ok());
  // Concurrent, not serialized: total stays near one load's latency.
  EXPECT_NEAR(ToSeconds(sim_.now() - start), 68.7, 1.0);
}

TEST_F(MechLibraryTest, SameArmSerializesOperations) {
  config_.drive_sets = 2;
  Library lib(sim_, config_);
  sim::TimePoint start = sim_.now();
  Status s1;
  Status s2;
  sim_.Spawn([](Library* l, Status* out) -> sim::Task<void> {
    *out = co_await l->LoadArray({0, 0, 1}, 0);
  }(&lib, &s1));
  sim_.Spawn([](Library* l, Status* out) -> sim::Task<void> {
    *out = co_await l->LoadArray({0, 0, 2}, 1);
  }(&lib, &s2));
  sim_.Run();
  EXPECT_TRUE(s1.ok());
  EXPECT_TRUE(s2.ok());
  // Both on roller 0: the single arm forces ~2x one load.
  EXPECT_GT(ToSeconds(sim_.now() - start), 2 * 65.0);
}

// Mechanical fault injection: recalibration retries add delay but the
// operation still completes.
TEST_F(MechLibraryTest, RecalibrationAddsDelayButSucceeds) {
  Library lib(sim_, config_);
  lib.plc().set_fault_model({.miscalibration_rate = 0.3, .max_retries = 100});
  double t = Timed(sim_, lib.LoadArray({0, 0, 1}, 0));
  EXPECT_GT(t, 68.7);
  EXPECT_GT(lib.plc().recalibrations(), 0u);
}

TEST_F(MechLibraryTest, PlcTracksInstructionTelemetry) {
  Library lib(sim_, config_);
  ASSERT_TRUE(sim_.RunUntilComplete(lib.LoadArray({0, 0, 1}, 0)).ok());
  // rotate + move + fan-out + grab + return + fan-in + open + 12 separates.
  EXPECT_EQ(lib.plc().instructions_executed(), 19u);
  EXPECT_GT(lib.plc().busy_time(), Seconds(60));
}

}  // namespace
}  // namespace ros::mech
