// Unit tests for the Metadata Volume (§4.2).
#include "src/olfs/metadata_volume.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/disk/block_device.h"
#include "src/sim/simulator.h"

namespace ros::olfs {
namespace {

class MetadataVolumeTest : public ::testing::Test {
 protected:
  MetadataVolumeTest()
      : device_(sim_, "ssd", 64 * kMiB, disk::SsdPerf()),
        volume_(sim_, &device_, disk::MetadataVolumeParams()),
        mv_(&volume_) {}

  IndexFile FileIndex(const std::string& path, std::uint64_t size) {
    IndexFile index(path, EntryType::kFile);
    VersionEntry entry;
    entry.total_size = size;
    entry.parts.push_back({"img-000000", size});
    index.AddVersion(std::move(entry), 15);
    return index;
  }

  sim::Simulator sim_;
  disk::StorageDevice device_;
  disk::Volume volume_;
  MetadataVolume mv_;
};

TEST_F(MetadataVolumeTest, PutGetRoundTrip) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/a/b", 123))).ok());
  EXPECT_TRUE(mv_.Exists("/a/b"));
  auto index = sim_.RunUntilComplete(mv_.Get("/a/b"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->path(), "/a/b");
  EXPECT_EQ((*index->Latest())->total_size, 123u);
}

TEST_F(MetadataVolumeTest, PutOverwritesInPlace) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/f", 1))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/f", 2))).ok());
  auto index = sim_.RunUntilComplete(mv_.Get("/f"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index->Latest())->total_size, 2u);
  EXPECT_EQ(mv_.index_count(), 1u);
}

TEST_F(MetadataVolumeTest, GetMissingFails) {
  EXPECT_EQ(sim_.RunUntilComplete(mv_.Get("/nope")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MetadataVolumeTest, RemoveDeletesIndex) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/f", 1))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Remove("/f")).ok());
  EXPECT_FALSE(mv_.Exists("/f"));
}

TEST_F(MetadataVolumeTest, ListChildrenDirectOnly) {
  for (const char* path : {"/d", "/d/x", "/d/y", "/d/sub", "/d/sub/deep",
                           "/other"}) {
    IndexFile index(path, EntryType::kDirectory);
    ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(index)).ok());
  }
  auto children = mv_.ListChildren("/d");
  EXPECT_EQ(children, (std::vector<std::string>{"sub", "x", "y"}));
  EXPECT_EQ(mv_.ListChildren("/"),
            (std::vector<std::string>{"d", "other"}));
  EXPECT_TRUE(mv_.ListChildren("/d/x").empty());
}

TEST_F(MetadataVolumeTest, SystemStateRoundTrip) {
  json::Object state;
  state["arrays_burned"] = json::Value(7);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.PutState("checkpoint", json::Value(std::move(state))))
                  .ok());
  auto loaded = sim_.RunUntilComplete(mv_.GetState("checkpoint"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)["arrays_burned"].as_int(), 7);
  // Overwrite works too.
  json::Object state2;
  state2["arrays_burned"] = json::Value(8);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.PutState("checkpoint", json::Value(std::move(state2))))
                  .ok());
  loaded = sim_.RunUntilComplete(mv_.GetState("checkpoint"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)["arrays_burned"].as_int(), 8);
}

TEST_F(MetadataVolumeTest, SnapshotRoundTripRestoresNamespace) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/p/a", 10))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/p/b", 20))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.Put(IndexFile("/p", EntryType::kDirectory))).ok());

  auto snapshot = sim_.RunUntilComplete(
      mv_.BuildSnapshotImage("mv-snap-0", 64 * kMiB));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->file_count(), 3u);

  mv_.WipeAll();
  EXPECT_EQ(mv_.index_count(), 0u);
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.RestoreFromSnapshot(*snapshot)).ok());
  EXPECT_EQ(mv_.index_count(), 3u);
  auto index = sim_.RunUntilComplete(mv_.Get("/p/b"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index->Latest())->total_size, 20u);
}

TEST_F(MetadataVolumeTest, SnapshotHandlesDirectoryChildCollision) {
  // A directory index file and its children must coexist in the snapshot
  // (regression: the "#idx" suffix prevents path collisions).
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.Put(IndexFile("/snap", EntryType::kDirectory))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/snap/f", 1))).ok());
  auto snapshot = sim_.RunUntilComplete(
      mv_.BuildSnapshotImage("mv-snap-1", 64 * kMiB));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
}

TEST_F(MetadataVolumeTest, AllPathsSorted) {
  for (const char* path : {"/z", "/a", "/m/k"}) {
    ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex(path, 1))).ok());
  }
  EXPECT_EQ(mv_.AllPaths(), (std::vector<std::string>{"/a", "/m/k", "/z"}));
}

TEST_F(MetadataVolumeTest, HasChildrenMatchesListChildren) {
  EXPECT_FALSE(mv_.HasChildren("/"));
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.Put(IndexFile("/d", EntryType::kDirectory))).ok());
  EXPECT_FALSE(mv_.HasChildren("/d"));
  EXPECT_TRUE(mv_.HasChildren("/"));  // "/d" itself is a child of the root
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/d/f", 1))).ok());
  EXPECT_TRUE(mv_.HasChildren("/d"));
  EXPECT_TRUE(mv_.HasChildren("/"));
  EXPECT_FALSE(mv_.HasChildren("/d/f"));
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Remove("/d/f")).ok());
  EXPECT_FALSE(mv_.HasChildren("/d"));
}

TEST_F(MetadataVolumeTest, PutPublishesToCacheAndGetHits) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/c", 5))).ok());
  EXPECT_EQ(mv_.cache_size(), 1u);
  const auto before = mv_.cache_stats();
  auto index = sim_.RunUntilComplete(mv_.Get("/c"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index->Latest())->total_size, 5u);
  EXPECT_EQ(mv_.cache_stats().hits, before.hits + 1);
  EXPECT_EQ(mv_.cache_stats().misses, before.misses);
}

TEST_F(MetadataVolumeTest, GetRefSharesOneDecodedObject) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/s", 9))).ok());
  auto first = sim_.RunUntilComplete(mv_.GetRef("/s"));
  auto second = sim_.RunUntilComplete(mv_.GetRef("/s"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Hits hand out the same immutable decode, not copies.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ((**first).path(), "/s");
}

TEST_F(MetadataVolumeTest, GetAndGetRefAgree) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/both", 3))).ok());
  auto ref = sim_.RunUntilComplete(mv_.GetRef("/both"));
  auto copy = sim_.RunUntilComplete(mv_.Get("/both"));
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ((*ref)->ToJson(), copy->ToJson());
  EXPECT_EQ(sim_.RunUntilComplete(mv_.GetRef("/nope")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MetadataVolumeTest, DirectVolumeWriteInvalidatesCachedEntry) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/inv", 1))).ok());
  auto warm = sim_.RunUntilComplete(mv_.Get("/inv"));
  ASSERT_TRUE(warm.ok());

  // Bypass the MV entirely — recovery tools and corruption tests write the
  // volume directly. The mutation observer must drop the cached decode.
  const std::string doc = FileIndex("/inv", 42).ToJson();
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.volume()->WriteAll(
                      MetadataVolume::IndexName("/inv"),
                      std::vector<std::uint8_t>(doc.begin(), doc.end())))
                  .ok());
  const auto misses_before = mv_.cache_stats().misses;
  auto fresh = sim_.RunUntilComplete(mv_.Get("/inv"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh->Latest())->total_size, 42u);
  EXPECT_EQ(mv_.cache_stats().misses, misses_before + 1);
}

TEST_F(MetadataVolumeTest, RemoveAndWipeDropCachedEntries) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/r1", 1))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/r2", 2))).ok());
  EXPECT_EQ(mv_.cache_size(), 2u);
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Remove("/r1")).ok());
  EXPECT_EQ(mv_.cache_size(), 1u);
  EXPECT_EQ(sim_.RunUntilComplete(mv_.Get("/r1")).status().code(),
            StatusCode::kNotFound);
  mv_.WipeAll();
  EXPECT_EQ(mv_.cache_size(), 0u);
  EXPECT_EQ(sim_.RunUntilComplete(mv_.Get("/r2")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MetadataVolumeTest, RestorePastPerFileFailuresReportsCount) {
  for (const char* path : {"/p/a", "/p/b", "/p/c"}) {
    ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex(path, 7))).ok());
  }
  auto snapshot = sim_.RunUntilComplete(
      mv_.BuildSnapshotImage("mv-snap-err", 64 * kMiB));
  ASSERT_TRUE(snapshot.ok());

  mv_.WipeAll();
  // Leave the volume with no free space: every restored WriteAll must
  // fail, and the restore should keep going and report all of it rather
  // than abort on the first entry.
  disk::Volume* volume = mv_.volume();
  ASSERT_TRUE(sim_.RunUntilComplete(volume->Create("/fill")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume->Write("/fill", 0,
                                std::vector<std::uint8_t>(
                                    volume->free_bytes())))
                  .ok());

  Status status = sim_.RunUntilComplete(mv_.RestoreFromSnapshot(*snapshot));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(std::string(status.message()).find("2 more restore failures"),
            std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace ros::olfs
