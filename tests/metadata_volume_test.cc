// Unit tests for the Metadata Volume (§4.2).
#include "src/olfs/metadata_volume.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/disk/block_device.h"
#include "src/sim/simulator.h"

namespace ros::olfs {
namespace {

class MetadataVolumeTest : public ::testing::Test {
 protected:
  MetadataVolumeTest()
      : device_(sim_, "ssd", 64 * kMiB, disk::SsdPerf()),
        volume_(sim_, &device_, disk::MetadataVolumeParams()),
        mv_(&volume_) {}

  IndexFile FileIndex(const std::string& path, std::uint64_t size) {
    IndexFile index(path, EntryType::kFile);
    VersionEntry entry;
    entry.total_size = size;
    entry.parts.push_back({"img-000000", size});
    index.AddVersion(std::move(entry), 15);
    return index;
  }

  sim::Simulator sim_;
  disk::StorageDevice device_;
  disk::Volume volume_;
  MetadataVolume mv_;
};

TEST_F(MetadataVolumeTest, PutGetRoundTrip) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/a/b", 123))).ok());
  EXPECT_TRUE(mv_.Exists("/a/b"));
  auto index = sim_.RunUntilComplete(mv_.Get("/a/b"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->path(), "/a/b");
  EXPECT_EQ((*index->Latest())->total_size, 123u);
}

TEST_F(MetadataVolumeTest, PutOverwritesInPlace) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/f", 1))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/f", 2))).ok());
  auto index = sim_.RunUntilComplete(mv_.Get("/f"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index->Latest())->total_size, 2u);
  EXPECT_EQ(mv_.index_count(), 1u);
}

TEST_F(MetadataVolumeTest, GetMissingFails) {
  EXPECT_EQ(sim_.RunUntilComplete(mv_.Get("/nope")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MetadataVolumeTest, RemoveDeletesIndex) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/f", 1))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Remove("/f")).ok());
  EXPECT_FALSE(mv_.Exists("/f"));
}

TEST_F(MetadataVolumeTest, ListChildrenDirectOnly) {
  for (const char* path : {"/d", "/d/x", "/d/y", "/d/sub", "/d/sub/deep",
                           "/other"}) {
    IndexFile index(path, EntryType::kDirectory);
    ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(index)).ok());
  }
  auto children = mv_.ListChildren("/d");
  EXPECT_EQ(children, (std::vector<std::string>{"sub", "x", "y"}));
  EXPECT_EQ(mv_.ListChildren("/"),
            (std::vector<std::string>{"d", "other"}));
  EXPECT_TRUE(mv_.ListChildren("/d/x").empty());
}

TEST_F(MetadataVolumeTest, SystemStateRoundTrip) {
  json::Object state;
  state["arrays_burned"] = json::Value(7);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.PutState("checkpoint", json::Value(std::move(state))))
                  .ok());
  auto loaded = sim_.RunUntilComplete(mv_.GetState("checkpoint"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)["arrays_burned"].as_int(), 7);
  // Overwrite works too.
  json::Object state2;
  state2["arrays_burned"] = json::Value(8);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.PutState("checkpoint", json::Value(std::move(state2))))
                  .ok());
  loaded = sim_.RunUntilComplete(mv_.GetState("checkpoint"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)["arrays_burned"].as_int(), 8);
}

TEST_F(MetadataVolumeTest, SnapshotRoundTripRestoresNamespace) {
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/p/a", 10))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/p/b", 20))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.Put(IndexFile("/p", EntryType::kDirectory))).ok());

  auto snapshot = sim_.RunUntilComplete(
      mv_.BuildSnapshotImage("mv-snap-0", 64 * kMiB));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->file_count(), 3u);

  mv_.WipeAll();
  EXPECT_EQ(mv_.index_count(), 0u);
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.RestoreFromSnapshot(*snapshot)).ok());
  EXPECT_EQ(mv_.index_count(), 3u);
  auto index = sim_.RunUntilComplete(mv_.Get("/p/b"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index->Latest())->total_size, 20u);
}

TEST_F(MetadataVolumeTest, SnapshotHandlesDirectoryChildCollision) {
  // A directory index file and its children must coexist in the snapshot
  // (regression: the "#idx" suffix prevents path collisions).
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.Put(IndexFile("/snap", EntryType::kDirectory))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex("/snap/f", 1))).ok());
  auto snapshot = sim_.RunUntilComplete(
      mv_.BuildSnapshotImage("mv-snap-1", 64 * kMiB));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
}

TEST_F(MetadataVolumeTest, AllPathsSorted) {
  for (const char* path : {"/z", "/a", "/m/k"}) {
    ASSERT_TRUE(sim_.RunUntilComplete(mv_.Put(FileIndex(path, 1))).ok());
  }
  EXPECT_EQ(mv_.AllPaths(), (std::vector<std::string>{"/a", "/m/k", "/z"}));
}

}  // namespace
}  // namespace ros::olfs
