#include "src/udf/image.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/units.h"

namespace ros::udf {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(SplitPath, ValidAndInvalid) {
  auto p = SplitPath("/a/b/c");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitPath("/")->empty());
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("relative").ok());
  EXPECT_FALSE(SplitPath("/a//b").ok());
  EXPECT_FALSE(SplitPath("/a/../b").ok());
  EXPECT_FALSE(SplitPath("/a/./b").ok());
  EXPECT_FALSE(SplitPath("/a/").ok());
}

TEST(UdfImage, EmptyImageChargesRootEntry) {
  Image image("img-1", 25 * kGB);
  EXPECT_EQ(image.used_bytes(), kEntryOverhead);
  EXPECT_EQ(image.file_count(), 0u);
}

TEST(UdfImage, AddFileCreatesAncestorDirectories) {
  Image image("img-1", 25 * kGB);
  ASSERT_TRUE(image.AddFile("/archive/2016/jan/trace.bin",
                            Bytes("payload")).ok());
  EXPECT_TRUE(image.Exists("/archive"));
  EXPECT_TRUE(image.Exists("/archive/2016"));
  EXPECT_TRUE(image.Exists("/archive/2016/jan"));
  auto node = image.Lookup("/archive/2016/jan/trace.bin");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->type, NodeType::kFile);
  EXPECT_EQ((*node)->logical_size, 7u);
}

TEST(UdfImage, SpaceAccountingMinimum2KPerEntry) {
  Image image("img-1", 25 * kGB);
  // 1-byte file at depth 2: root(already) + dir + entry + 1 data block.
  const std::uint64_t before = image.used_bytes();
  ASSERT_TRUE(image.AddFile("/d/f", Bytes("x")).ok());
  EXPECT_EQ(image.used_bytes() - before, 3 * kBlockSize);
}

TEST(UdfImage, WorstCaseSmallFilesHalveCapacity) {
  // §4.5: files < 2 KiB plus their 2 KiB entry mean only half the bucket
  // stores data. Verify the accounting exhibits exactly that.
  Image image("img-1", 10 * kMiB);
  int added = 0;
  while (image.AddFile("/f" + std::to_string(added),
                       std::vector<std::uint8_t>(kBlockSize, 1)).ok()) {
    ++added;
  }
  // Each file consumed 2 blocks (entry + 1 data block): data stored is
  // half the capacity (minus the root entry).
  const std::uint64_t data_bytes =
      static_cast<std::uint64_t>(added) * kBlockSize;
  EXPECT_NEAR(static_cast<double>(data_bytes) / (10 * kMiB), 0.5, 0.01);
}

TEST(UdfImage, DuplicatePathRejected) {
  Image image("img-1", kGB);
  ASSERT_TRUE(image.AddFile("/a", Bytes("1")).ok());
  EXPECT_EQ(image.AddFile("/a", Bytes("2")).code(),
            StatusCode::kAlreadyExists);
}

TEST(UdfImage, FileAsDirectoryComponentRejected) {
  Image image("img-1", kGB);
  ASSERT_TRUE(image.AddFile("/a", Bytes("1")).ok());
  EXPECT_EQ(image.AddFile("/a/b", Bytes("2")).code(),
            StatusCode::kInvalidArgument);
}

TEST(UdfImage, ClosedImageIsWorm) {
  Image image("img-1", kGB);
  ASSERT_TRUE(image.AddFile("/a", Bytes("1")).ok());
  image.Close();
  EXPECT_EQ(image.AddFile("/b", Bytes("2")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(image.AppendToFile("/a", Bytes("x"), 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(image.MakeDirs("/c").code(), StatusCode::kFailedPrecondition);
  // Reads still work.
  EXPECT_TRUE(image.ReadFile("/a", 0, 1).ok());
}

TEST(UdfImage, ReadFileSparseTail) {
  Image image("img-1", kGB);
  ASSERT_TRUE(image.AddFile("/big", Bytes("abc"), 10).ok());
  auto data = image.ReadFile("/big", 1, 6);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, (std::vector<std::uint8_t>{'b', 'c', 0, 0, 0, 0}));
  EXPECT_EQ(image.ReadFile("/big", 5, 6).status().code(),
            StatusCode::kOutOfRange);
}

TEST(UdfImage, AppendGrowsFileAndAccounting) {
  Image image("img-1", kGB);
  ASSERT_TRUE(image.AddFile("/log", Bytes("aa"), 2).ok());
  const std::uint64_t before = image.used_bytes();
  // Grow within the same block: no extra space.
  ASSERT_TRUE(image.AppendToFile("/log", Bytes("bb"), 2).ok());
  EXPECT_EQ(image.used_bytes(), before);
  // Grow past the block boundary: one more block.
  ASSERT_TRUE(image.AppendToFile("/log", std::vector<std::uint8_t>(kBlockSize, 7),
                                 kBlockSize).ok());
  EXPECT_EQ(image.used_bytes(), before + kBlockSize);
  auto data = image.ReadFile("/log", 0, 4);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("aabb"));
}

TEST(UdfImage, LinkFilesForSplitFiles) {
  Image image("img-2", kGB);
  ASSERT_TRUE(image.AddLink("/data/huge.bin.part0", "img-1").ok());
  auto node = image.Lookup("/data/huge.bin.part0");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->type, NodeType::kLink);
  EXPECT_EQ((*node)->link_target_image, "img-1");
}

TEST(UdfImage, CapacityEnforced) {
  Image image("img-1", 8 * kBlockSize);
  // root(1) + file entry(1) + 5 data = 7 blocks: fits.
  ASSERT_TRUE(image.AddFile("/f", {}, 5 * kBlockSize).ok());
  // Another file would need 2 more blocks; only 1 left.
  EXPECT_FALSE(image.WouldFit("/g", kBlockSize));
  EXPECT_EQ(image.AddFile("/g", {}, kBlockSize).code(),
            StatusCode::kResourceExhausted);
  // A zero-byte file (entry only) still fits.
  EXPECT_TRUE(image.AddFile("/empty", {}).ok());
  EXPECT_EQ(image.free_bytes(), 0u);
}

TEST(UdfImage, CostOfCountsMissingAncestors) {
  Image image("img-1", kGB);
  EXPECT_EQ(image.CostOf("/a/b/c/f", 1),
            3 * kEntryOverhead + kEntryOverhead + kBlockSize);
  ASSERT_TRUE(image.MakeDirs("/a/b").ok());
  EXPECT_EQ(image.CostOf("/a/b/c/f", 1),
            kEntryOverhead + kEntryOverhead + kBlockSize);
}

TEST(UdfImage, ListAndWalk) {
  Image image("img-1", kGB);
  ASSERT_TRUE(image.AddFile("/x/1", Bytes("a")).ok());
  ASSERT_TRUE(image.AddFile("/x/2", Bytes("b")).ok());
  ASSERT_TRUE(image.AddFile("/y", Bytes("c")).ok());
  auto ls = image.List("/x");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(*ls, (std::vector<std::string>{"1", "2"}));
  auto root = image.List("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, (std::vector<std::string>{"x", "y"}));

  std::vector<std::string> walked;
  image.Walk([&](const std::string& path, const Node&) {
    walked.push_back(path);
  });
  EXPECT_EQ(walked,
            (std::vector<std::string>{"/x", "/x/1", "/x/2", "/y"}));
}

}  // namespace
}  // namespace ros::udf
