// Tests of the NAS stack model against the paper's Figure 6 / Figure 7
// numbers.
#include "src/frontend/stack.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/olfs/olfs.h"
#include "src/sim/time.h"
#include "src/workload/filebench.h"

namespace ros::frontend {
namespace {

using olfs::Olfs;
using olfs::OlfsParams;
using olfs::RosSystem;
using olfs::TestSystemConfig;

class FrontendStackTest : public ::testing::Test {
 protected:
  FrontendStackTest() {
    olfs::SystemConfig config = TestSystemConfig();
    config.hdds_per_volume = 7;  // the paper's RAID-5 geometry
    config.hdd_capacity = 8 * kGiB;
    system_ = std::make_unique<RosSystem>(sim_, config);
    OlfsParams params;
    params.disc_capacity_override = 2 * kGiB;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
  }

  // Runs a singlestream workload and returns throughput in MB/s.
  double MeasureWrite(StackConfig config, std::uint64_t total,
                      bool big_writes = true) {
    FrontendStack stack(sim_, config, system_->data_volumes()[0],
                        olfs_.get());
    stack.big_writes = big_writes;
    auto result = sim_.RunUntilComplete(workload::SinglestreamWrite(
        sim_, stack, "/bench/w-" + std::string(StackConfigName(config)) +
                         (big_writes ? "" : "-4k"),
        total));
    ROS_CHECK(result.ok());
    return result->bytes_per_sec() / 1e6;
  }

  double MeasureRead(StackConfig config, std::uint64_t total) {
    const std::string path =
        "/bench/r-" + std::string(StackConfigName(config));
    FrontendStack stack(sim_, config, system_->data_volumes()[0],
                        olfs_.get());
    ROS_CHECK(sim_.RunUntilComplete(
                  workload::SinglestreamWrite(sim_, stack, path, total))
                  .ok());
    auto result = sim_.RunUntilComplete(
        workload::SinglestreamRead(sim_, stack, path, total));
    ROS_CHECK(result.ok());
    return result->bytes_per_sec() / 1e6;
  }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

constexpr std::uint64_t kStream = 512 * kMB;

// Fig 6 baseline: ext4 on one RAID-5 volume reads ~1.2 GB/s and writes
// ~1.0 GB/s.
TEST_F(FrontendStackTest, Ext4BaselineMatchesPaper) {
  double write = MeasureWrite(StackConfig::kExt4, kStream);
  EXPECT_NEAR(write, 1000.0, 120.0);
  double read = MeasureRead(StackConfig::kExt4, kStream);
  EXPECT_NEAR(read, 1200.0, 130.0);
}

// Fig 6: FUSE costs 24.1% of read and 51.8% of write throughput.
TEST_F(FrontendStackTest, FuseOverheadMatchesFigure6) {
  double write = MeasureWrite(StackConfig::kExt4Fuse, kStream);
  EXPECT_NEAR(write, 0.482 * 1000.0, 60.0);
  double read = MeasureRead(StackConfig::kExt4Fuse, kStream);
  EXPECT_NEAR(read, 0.759 * 1200.0, 100.0);
}

// Fig 6: OLFS on FUSE loses a further 28.9% read / 10.1% write.
TEST_F(FrontendStackTest, OlfsOverheadMatchesFigure6) {
  double write = MeasureWrite(StackConfig::kExt4Olfs, kStream);
  EXPECT_NEAR(write, 0.433 * 1000.0, 60.0);
  double read = MeasureRead(StackConfig::kExt4Olfs, kStream);
  EXPECT_NEAR(read, 0.540 * 1200.0, 90.0);
}

// Fig 6: Samba alone degrades ~68.9% read / 68.0% write.
TEST_F(FrontendStackTest, SambaOverheadMatchesFigure6) {
  double write = MeasureWrite(StackConfig::kSamba, kStream);
  EXPECT_NEAR(write, 0.320 * 1000.0, 45.0);
  double read = MeasureRead(StackConfig::kSamba, kStream);
  EXPECT_NEAR(read, 0.311 * 1200.0, 55.0);
}

// The deployed samba+OLFS stack: ~323 MB/s read, ~236 MB/s write
// (abstract; §5.3's prose swaps the two labels).
TEST_F(FrontendStackTest, SambaOlfsThroughputMatchesAbstract) {
  double write = MeasureWrite(StackConfig::kSambaOlfs, kStream);
  EXPECT_NEAR(write, 236.0, 40.0);
  double read = MeasureRead(StackConfig::kSambaOlfs, kStream);
  EXPECT_NEAR(read, 323.0, 55.0);
}

// Ordering sanity: each added layer slows the stack down.
TEST_F(FrontendStackTest, LayeringIsMonotone) {
  double ext4 = MeasureWrite(StackConfig::kExt4, 128 * kMB);
  double fuse = MeasureWrite(StackConfig::kExt4Fuse, 128 * kMB);
  double olfs = MeasureWrite(StackConfig::kExt4Olfs, 128 * kMB);
  double samba_olfs = MeasureWrite(StackConfig::kSambaOlfs, 128 * kMB);
  EXPECT_GT(ext4, fuse);
  EXPECT_GT(fuse, olfs);
  EXPECT_GT(olfs, samba_olfs);
}

// §4.8: without the big_writes mount option FUSE flushes 4 KiB at a time,
// collapsing write throughput.
TEST_F(FrontendStackTest, BigWritesAblation) {
  double big = MeasureWrite(StackConfig::kExt4Fuse, 64 * kMB, true);
  double plain = MeasureWrite(StackConfig::kExt4Fuse, 64 * kMB, false);
  EXPECT_GT(big, 4 * plain);
  EXPECT_LT(plain, 120.0);  // collapses to tens of MB/s
}

// Fig 7: per-operation latencies and internal-op breakdowns.
TEST_F(FrontendStackTest, OpLatenciesMatchFigure7) {
  FrontendStack olfs_stack(sim_, StackConfig::kExt4Olfs, nullptr,
                           olfs_.get());
  auto write_lat = sim_.RunUntilComplete(
      olfs_stack.TimedCreate("/lat/ext4olfs", 1 * kKiB));
  ASSERT_TRUE(write_lat.ok());
  EXPECT_NEAR(sim::ToMillis(*write_lat), 16.0, 2.5);
  auto read_lat = sim_.RunUntilComplete(
      olfs_stack.TimedRead("/lat/ext4olfs", 1 * kKiB));
  ASSERT_TRUE(read_lat.ok());
  EXPECT_NEAR(sim::ToMillis(*read_lat), 9.0, 1.5);

  FrontendStack samba_stack(sim_, StackConfig::kSambaOlfs, nullptr,
                            olfs_.get());
  auto samba_write = sim_.RunUntilComplete(
      samba_stack.TimedCreate("/lat/sambaolfs", 1 * kKiB));
  ASSERT_TRUE(samba_write.ok());
  EXPECT_NEAR(sim::ToMillis(*samba_write), 53.0, 7.0);
  // Fig 7: 7 extra stats precede the OLFS write sequence.
  int stats = 0;
  for (const std::string& op : samba_stack.last_op_trace()) {
    stats += (op == "stat");
  }
  EXPECT_GE(stats, 8);  // 7 samba stats + OLFS's own

  auto samba_read = sim_.RunUntilComplete(
      samba_stack.TimedRead("/lat/sambaolfs", 1 * kKiB));
  ASSERT_TRUE(samba_read.ok());
  EXPECT_NEAR(sim::ToMillis(*samba_read), 15.0, 3.0);
}

// A tagged batch-scan workload threads its AccessHint through the whole
// frontend stack into OLFS: the writes record co-access edges for the
// burn planner and the reads return every byte (the hint channel may
// re-order mechanical work but never changes data).
TEST_F(FrontendStackTest, ScanReadThreadsHintsThroughStack) {
  FrontendStack stack(sim_, StackConfig::kExt4Olfs,
                      system_->data_volumes()[0], olfs_.get());
  std::vector<workload::ArchivalFile> files;
  constexpr std::uint64_t kStreamId = 42;
  for (int i = 0; i < 3; ++i) {
    workload::ArchivalFile file;
    file.path = "/scan/item" + std::to_string(i);
    file.size = 2 * kMB;
    ASSERT_TRUE(sim_.RunUntilComplete(
                    workload::SinglestreamWrite(
                        sim_, stack, file.path, file.size, 1 * kMB,
                        olfs::AccessHint{kStreamId}))
                    .ok());
    files.push_back(std::move(file));
  }
  // All three small files share the one open bucket image, so the
  // tagged writes collapse to a single (stream, image) edge.
  EXPECT_GE(olfs_->affinity().edges(), 1u);

  auto result = sim_.RunUntilComplete(
      workload::ScanRead(sim_, stack, files, kStreamId));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->bytes, 3u * 2 * kMB);
  EXPECT_GE(olfs_->affinity().edges(), 1u);
}

}  // namespace
}  // namespace ros::frontend
