#include "src/sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::sim {
namespace {

TEST(Event, WaitersReleasedOnSet) {
  Simulator sim;
  Event event(sim);
  std::vector<int> log;
  auto waiter = [&](Simulator& s, int id) -> Task<void> {
    co_await event.Wait();
    log.push_back(id);
    (void)s;
  };
  sim.Spawn(waiter(sim, 1));
  sim.Spawn(waiter(sim, 2));
  sim.ScheduleAfter(Seconds(5), [&] { event.Set(); });
  sim.Run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), Seconds(5));
}

TEST(Event, SetBeforeWaitCompletesImmediately) {
  Simulator sim;
  Event event(sim);
  event.Set();
  bool ran = false;
  auto waiter = [&](Simulator& s) -> Task<void> {
    co_await event.Wait();
    ran = true;
    EXPECT_EQ(s.now(), 0);
  };
  sim.RunUntilComplete(waiter(sim));
  EXPECT_TRUE(ran);
}

TEST(Event, PulseWakesWithoutLatching) {
  Simulator sim;
  Event event(sim);
  int wakeups = 0;
  auto waiter = [&](Simulator&) -> Task<void> {
    co_await event.Wait();
    ++wakeups;
    co_await event.Wait();  // must block again after pulse
    ++wakeups;
  };
  sim.Spawn(waiter(sim));
  sim.ScheduleAfter(Seconds(1), [&] { event.Pulse(); });
  sim.Run();
  EXPECT_EQ(wakeups, 1);
  EXPECT_FALSE(event.is_set());
  event.Set();
  sim.Run();
  EXPECT_EQ(wakeups, 2);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore drives(sim, 2);
  int active = 0;
  int peak = 0;
  auto worker = [&](Simulator& s) -> Task<void> {
    co_await drives.Acquire();
    ++active;
    peak = std::max(peak, active);
    co_await s.Delay(Seconds(10));
    --active;
    drives.Release();
  };
  for (int i = 0; i < 6; ++i) {
    sim.Spawn(worker(sim));
  }
  sim.Run();
  EXPECT_EQ(peak, 2);
  // 6 jobs, 2 at a time, 10 s each -> 30 s.
  EXPECT_EQ(sim.now(), Seconds(30));
}

TEST(Semaphore, FifoFairness) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto worker = [&](Simulator& s, int id) -> Task<void> {
    co_await sem.Acquire();
    order.push_back(id);
    co_await s.Delay(Seconds(1));
    sem.Release();
  };
  for (int id = 0; id < 5; ++id) {
    sim.Spawn(worker(sim, id));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Semaphore, TryAcquire) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(Mutex, ScopedLockSerializesCriticalSections) {
  Simulator sim;
  Mutex mutex(sim);
  bool inside = false;
  int entries = 0;
  auto worker = [&](Simulator& s) -> Task<void> {
    Mutex::ScopedLock lock = co_await mutex.Lock();
    EXPECT_FALSE(inside);
    inside = true;
    ++entries;
    co_await s.Delay(Seconds(1));
    inside = false;
    // lock released by destructor
  };
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(worker(sim));
  }
  sim.Run();
  EXPECT_EQ(entries, 4);
  EXPECT_EQ(sim.now(), Seconds(4));
}

TEST(Mutex, ExplicitUnlockReleasesEarly) {
  Simulator sim;
  Mutex mutex(sim);
  std::vector<int> order;
  auto first = [&](Simulator& s) -> Task<void> {
    Mutex::ScopedLock lock = co_await mutex.Lock();
    order.push_back(1);
    lock.Unlock();
    co_await s.Delay(Seconds(10));
    order.push_back(3);
  };
  auto second = [&](Simulator& s) -> Task<void> {
    co_await s.Delay(Seconds(1));
    Mutex::ScopedLock lock = co_await mutex.Lock();
    order.push_back(2);
  };
  sim.Spawn(first(sim));
  sim.Spawn(second(sim));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ConditionVariable, NotifyAllWakesAllWaiters) {
  Simulator sim;
  ConditionVariable cv(sim);
  int ready = 0;
  int observed = 0;
  auto waiter = [&](Simulator&) -> Task<void> {
    while (ready == 0) {
      co_await cv.Wait();
    }
    ++observed;
  };
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(waiter(sim));
  }
  sim.ScheduleAfter(Seconds(2), [&] {
    ready = 1;
    cv.NotifyAll();
  });
  sim.Run();
  EXPECT_EQ(observed, 3);
}

}  // namespace
}  // namespace ros::sim
