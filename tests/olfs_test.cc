// End-to-end tests of the OLFS stack on a small simulated rack.
#include "src/olfs/olfs.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;
using sim::ToSeconds;

OlfsParams TestParams() {
  OlfsParams params;
  params.disc_type = drive::DiscType::kBdr25;
  params.disc_capacity_override = 16 * kMiB;  // tiny media for fast tests
  params.read_cache_bytes = 256 * kMiB;
  return params;
}

class OlfsTest : public ::testing::Test {
 protected:
  OlfsTest() { Reset(TestParams()); }

  ~OlfsTest() override {
    // Destroy suspended background coroutines (burn/snapshot/scrub
    // loops) while the system objects they borrow are still alive.
    if (sim_ != nullptr) {
      sim_->Shutdown();
    }
  }

  void Reset(OlfsParams params) {
    if (sim_ != nullptr) {
      sim_->Shutdown();  // pending loops borrow the olfs_ we are resetting
    }
    olfs_.reset();
    system_.reset();
    sim_ = std::make_unique<sim::Simulator>();
    system_ = std::make_unique<RosSystem>(*sim_, TestSystemConfig());
    olfs_ = std::make_unique<Olfs>(*sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  std::vector<std::uint8_t> Bytes(const std::string& s) {
    return {s.begin(), s.end()};
  }

  std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) {
      b = static_cast<std::uint8_t>(rng.Next());
    }
    return out;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

TEST_F(OlfsTest, CreateAndReadBack) {
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/archive/a.txt", Bytes("hello ros")))
                  .ok());
  auto data = sim_->RunUntilComplete(olfs_->Read("/archive/a.txt", 0, 9));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, Bytes("hello ros"));
  // Partial read.
  data = sim_->RunUntilComplete(olfs_->Read("/archive/a.txt", 6, 3));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("ros"));
}

TEST_F(OlfsTest, CreateExistingFails) {
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Create("/a", Bytes("1"))).ok());
  EXPECT_EQ(sim_->RunUntilComplete(olfs_->Create("/a", Bytes("2"))).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(OlfsTest, ReadMissingFails) {
  EXPECT_EQ(
      sim_->RunUntilComplete(olfs_->Read("/nope", 0, 1)).status().code(),
      StatusCode::kNotFound);
}

TEST_F(OlfsTest, WriteLatencyMatchesFigure7) {
  // ext4+OLFS write: stat, mknod, stat, write, close -> ~16 ms (§5.3).
  sim::TimePoint t0 = sim_->now();
  ASSERT_TRUE(
      sim_->RunUntilComplete(olfs_->Create("/f", Bytes("x"))).ok());
  double ms = sim::ToMillis(sim_->now() - t0);
  EXPECT_NEAR(ms, 16.0, 2.5);
  EXPECT_EQ(olfs_->last_op_trace(),
            (std::vector<std::string>{"stat", "mknod", "stat", "write",
                                      "close"}));
}

TEST_F(OlfsTest, ReadLatencyMatchesFigure7) {
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Create("/f", Bytes("x"))).ok());
  // ext4+OLFS read: stat, read, close -> ~9 ms (§5.3).
  sim::TimePoint t0 = sim_->now();
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Read("/f", 0, 1)).ok());
  double ms = sim::ToMillis(sim_->now() - t0);
  EXPECT_NEAR(ms, 9.0, 1.5);
  EXPECT_EQ(olfs_->last_op_trace(),
            (std::vector<std::string>{"stat", "read", "close"}));
}

TEST_F(OlfsTest, RootIsAlwaysAStatableDirectory) {
  auto info = sim_->RunUntilComplete(olfs_->Stat("/"));
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->is_directory);
  auto empty = sim_->RunUntilComplete(olfs_->ReadDir("/"));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(OlfsTest, MkdirStatReadDir) {
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Mkdir("/data/sub")).ok());
  ASSERT_TRUE(
      sim_->RunUntilComplete(olfs_->Create("/data/f1", Bytes("1"))).ok());
  ASSERT_TRUE(
      sim_->RunUntilComplete(olfs_->Create("/data/f2", Bytes("22"))).ok());

  auto info = sim_->RunUntilComplete(olfs_->Stat("/data"));
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->is_directory);

  info = sim_->RunUntilComplete(olfs_->Stat("/data/f2"));
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->is_directory);
  EXPECT_EQ(info->size, 2u);
  EXPECT_EQ(info->version, 1);
  EXPECT_EQ(info->location, LocationKind::kBucket);

  auto children = sim_->RunUntilComplete(olfs_->ReadDir("/data"));
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"f1", "f2", "sub"}));
}

TEST_F(OlfsTest, UpdateCreatesVersionsAndHistoryIsReadable) {
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Create("/v", Bytes("one"))).ok());
  ASSERT_TRUE(
      sim_->RunUntilComplete(olfs_->Update("/v", Bytes("two!"), 4)).ok());
  ASSERT_TRUE(
      sim_->RunUntilComplete(olfs_->Update("/v", Bytes("three"), 5)).ok());

  auto latest = sim_->RunUntilComplete(olfs_->Read("/v", 0, 5));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, Bytes("three"));

  auto v1 = sim_->RunUntilComplete(olfs_->ReadVersion("/v", 1, 0, 3));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, Bytes("one"));
  auto v2 = sim_->RunUntilComplete(olfs_->ReadVersion("/v", 2, 0, 4));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, Bytes("two!"));

  auto info = sim_->RunUntilComplete(olfs_->Stat("/v"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 3);
}

TEST_F(OlfsTest, AppendExtendsOpenBucketFileInPlace) {
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Create("/log", Bytes("aa"))).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Append("/log", Bytes("bb"))).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Append("/log", Bytes("cc"))).ok());
  auto data = sim_->RunUntilComplete(olfs_->Read("/log", 0, 6));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("aabbcc"));
  // In-place: still version 1.
  auto info = sim_->RunUntilComplete(olfs_->Stat("/log"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 1);
}

TEST_F(OlfsTest, UnlinkTombstonesButKeepsHistory) {
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Create("/d", Bytes("x"))).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->Unlink("/d")).ok());
  EXPECT_EQ(sim_->RunUntilComplete(olfs_->Read("/d", 0, 1)).status().code(),
            StatusCode::kNotFound);
  // Data provenance: the old version is still on WORM-bound media.
  auto v1 = sim_->RunUntilComplete(olfs_->ReadVersion("/d", 1, 0, 1));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, Bytes("x"));
}

// §4.5: a file larger than a bucket's free space splits across buckets,
// with link files tying the parts together.
TEST_F(OlfsTest, LargeFileSplitsAcrossBuckets) {
  auto big = RandomBytes(20 * kMiB, 42);  // > 16 MiB bucket capacity
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/big.bin", big, big.size()))
                  .ok());
  auto info = sim_->RunUntilComplete(olfs_->Stat("/big.bin"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, big.size());

  // Read back across the split boundary.
  auto data = sim_->RunUntilComplete(
      olfs_->Read("/big.bin", 0, big.size()));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, big);
  // A mid-file read spanning the boundary.
  auto middle = sim_->RunUntilComplete(
      olfs_->Read("/big.bin", 15 * kMiB, 2 * kMiB));
  ASSERT_TRUE(middle.ok());
  EXPECT_TRUE(std::equal(middle->begin(), middle->end(),
                         big.begin() + 15 * kMiB));
  // The first bucket closed (split forces closure).
  EXPECT_GE(olfs_->buckets().buckets_created(), 2);
}

// The full pipeline: enough data to close 11 buckets triggers parity
// generation and a 12-disc array burn, after which reads still succeed.
TEST_F(OlfsTest, BurnPipelineBurnsFullArray) {
  // Each file nearly fills a 16 MiB bucket; 13 files close >= 11 buckets,
  // triggering an automatic full-array burn.
  for (int i = 0; i < 13; ++i) {
    auto data = RandomBytes(64 * kKiB, 100 + i);
    ASSERT_TRUE(sim_->RunUntilComplete(
                    olfs_->Create("/vault/f" + std::to_string(i), data,
                                  15 * kMiB))
                    .ok());
  }
  sim_->Run();  // let the burn pipeline drain
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->burns().DrainAll()).ok())
      << olfs_->burns().last_error().ToString();
  EXPECT_EQ(olfs_->burns().arrays_burned(), 1);
  EXPECT_EQ(olfs_->da_index().CountState(ArrayState::kUsed), 1);

  // All 11 data images + 1 parity image are on discs.
  EXPECT_EQ(olfs_->images().BurnedImages().size(), 12u);

  // Reads hit the cached copies (images still in the disk buffer).
  auto data = sim_->RunUntilComplete(olfs_->Read("/vault/f3", 0, 64 * kKiB));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, RandomBytes(64 * kKiB, 103));
  EXPECT_GT(olfs_->cache().hits(), 0u);
}

TEST_F(OlfsTest, FlushAndDrainBurnsPartialArray) {
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/x", RandomBytes(1000, 7), 1000))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
  EXPECT_EQ(olfs_->burns().arrays_burned(), 1);
  // 1 data + 1 parity image burned.
  EXPECT_EQ(olfs_->images().BurnedImages().size(), 2u);
  auto data = sim_->RunUntilComplete(olfs_->Read("/x", 0, 1000));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, RandomBytes(1000, 7));
}

// Table 1's cold path: with no cache, a read fetches the disc (loading the
// array mechanically), and a second read of the same disc is served from
// the parked drive.
TEST_F(OlfsTest, ReadMissFetchesDiscMechanically) {
  OlfsParams params = TestParams();
  params.read_cache_bytes = 0;  // evict everything after burning
  Reset(params);

  auto payload = RandomBytes(100 * kKiB, 9);
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/cold.bin", payload, payload.size()))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // Evicted: the only copy is on disc now.
  auto record = olfs_->images().BurnedImages();
  ASSERT_FALSE(record.empty());
  auto info = sim_->RunUntilComplete(olfs_->Stat("/cold.bin"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->location, LocationKind::kDisc);

  sim::TimePoint t0 = sim_->now();
  auto data = sim_->RunUntilComplete(olfs_->Read("/cold.bin", 0, 1000));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_TRUE(std::equal(data->begin(), data->end(), payload.begin()));
  double cold_seconds = ToSeconds(sim_->now() - t0);
  // Mechanical load (~69-74 s) + drive wake/mount + transfer.
  EXPECT_GT(cold_seconds, 65.0);
  EXPECT_LT(cold_seconds, 85.0);
  EXPECT_EQ(olfs_->fetches().fetches(), 1u);

  // Second read: disc already in the (parked) drive.
  t0 = sim_->now();
  data = sim_->RunUntilComplete(olfs_->Read("/cold.bin", 1000, 1000));
  ASSERT_TRUE(data.ok());
  double warm_seconds = ToSeconds(sim_->now() - t0);
  EXPECT_LT(warm_seconds, 1.0);
  EXPECT_EQ(olfs_->fetches().fetches(), 1u);  // no second fetch
}

// §4.7: a corrupted burned disc is detected by the scrub and repaired from
// the array's parity; the repaired image re-burns onto a fresh array.
TEST_F(OlfsTest, ScrubRepairsCorruptedDiscFromParity) {
  OlfsParams params = TestParams();
  params.read_cache_bytes = 0;
  Reset(params);

  auto payload = RandomBytes(50 * kKiB, 11);
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/precious", payload, payload.size()))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/second", RandomBytes(20 * kKiB, 12),
                                20 * kKiB))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // Corrupt the disc holding /precious's image.
  auto index = sim_->RunUntilComplete(olfs_->mv().Get("/precious"));
  ASSERT_TRUE(index.ok());
  const std::string image_id = (*index->Latest())->parts[0].image_id;
  auto record = olfs_->images().Lookup(image_id);
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE((*record)->disc.has_value());
  olfs_->mech().DiscAt(*(*record)->disc)->CorruptSector(1);

  // A direct read hits the data loss but is served degraded: the image is
  // reconstructed from parity inline and queued for repair.
  auto broken = sim_->RunUntilComplete(olfs_->Read("/precious", 0, 100));
  ASSERT_TRUE(broken.ok()) << broken.status().ToString();
  EXPECT_TRUE(std::equal(broken->begin(), broken->end(), payload.begin()));
  EXPECT_EQ(olfs_->degraded_reads(), 1u);
  EXPECT_EQ(olfs_->reconstructions(), 1u);
  EXPECT_EQ(olfs_->images_repaired(), 1u);
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // The repair already re-staged the image, so the scrub finds nothing
  // further to do.
  auto repaired = sim_->RunUntilComplete(olfs_->ScrubAndRepair());
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(*repaired, 0);

  auto data = sim_->RunUntilComplete(olfs_->Read("/precious", 0, 100));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_TRUE(std::equal(data->begin(), data->end(), payload.begin()));
}

// §4.7: the scrub itself still detects and repairs silently corrupted
// burned media that no client has read.
TEST_F(OlfsTest, ScrubRepairsSilentCorruptionWithoutARead) {
  OlfsParams params = TestParams();
  params.read_cache_bytes = 0;
  Reset(params);

  auto payload = RandomBytes(50 * kKiB, 31);
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/quiet", payload, payload.size()))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  auto index = sim_->RunUntilComplete(olfs_->mv().Get("/quiet"));
  ASSERT_TRUE(index.ok());
  const std::string image_id = (*index->Latest())->parts[0].image_id;
  auto record = olfs_->images().Lookup(image_id);
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE((*record)->disc.has_value());
  olfs_->mech().DiscAt(*(*record)->disc)->CorruptSector(1);

  auto repaired = sim_->RunUntilComplete(olfs_->ScrubAndRepair());
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(*repaired, 1);
  EXPECT_EQ(olfs_->reconstructions(), 1u);
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  auto data = sim_->RunUntilComplete(olfs_->Read("/quiet", 0, 100));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_TRUE(std::equal(data->begin(), data->end(), payload.begin()));
  EXPECT_EQ(olfs_->degraded_reads(), 0u);
}

// §4.4: with the MV wiped and even the controller replaced, scanning the
// survived discs rebuilds the namespace (unique file path + link files).
TEST_F(OlfsTest, NamespaceRebuiltFromDiscScanAfterTotalMvLoss) {
  auto payload_a = RandomBytes(40 * kKiB, 21);
  auto payload_b = RandomBytes(10 * kKiB, 22);
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/proj/data/a.bin", payload_a,
                                payload_a.size()))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/proj/notes/b.txt", payload_b,
                                payload_b.size()))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Update("/proj/notes/b.txt", Bytes("v2!"), 3))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // Find where the array went before we lose the metadata.
  auto burned = olfs_->images().BurnedImages();
  ASSERT_FALSE(burned.empty());
  auto record = olfs_->images().Lookup(burned[0]);
  ASSERT_TRUE(record.ok());
  const mech::TrayAddress tray = (*record)->disc->tray;

  // Catastrophe: controller dies; a replacement boots with an empty MV.
  olfs_ = std::make_unique<Olfs>(*sim_, system_.get(), TestParams());
  olfs_->burns().burn_start_interval = Seconds(1);
  EXPECT_EQ(sim_->RunUntilComplete(
                olfs_->Read("/proj/data/a.bin", 0, 10)).status().code(),
            StatusCode::kNotFound);

  auto report = sim_->RunUntilComplete(olfs_->RebuildNamespace({tray}));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->discs_scanned, 12);
  // One data image (all three writes fit one bucket); the parity disc is
  // registered but not parsed (it is not a UDF volume, §4.7).
  EXPECT_GE(report->images_parsed, 1);
  EXPECT_GE(report->files_recovered, 2);
  EXPECT_EQ(report->unreadable_discs, 0);

  auto data = sim_->RunUntilComplete(
      olfs_->Read("/proj/data/a.bin", 0, payload_a.size()));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, payload_a);

  // Both the latest version and the directory structure survived.
  auto latest_b = sim_->RunUntilComplete(
      olfs_->Read("/proj/notes/b.txt", 0, 3));
  ASSERT_TRUE(latest_b.ok());
  EXPECT_EQ(*latest_b, Bytes("v2!"));
  auto children = sim_->RunUntilComplete(olfs_->ReadDir("/proj"));
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"data", "notes"}));
}

// MV snapshots burned to disc (§4.2) restore the namespace too.
TEST_F(OlfsTest, MvSnapshotBurnsAndRestores) {
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/snap/f", Bytes("payload")))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->BurnMvSnapshot()).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
  // The snapshot image is on a disc alongside the data image.
  bool found_snapshot = false;
  for (const std::string& id : olfs_->images().BurnedImages()) {
    found_snapshot |= id.rfind("mv-snap-", 0) == 0;
  }
  EXPECT_TRUE(found_snapshot);
}

TEST_F(OlfsTest, ForepartFastPathAvoidsMechanicalFetchOnSmallReads) {
  OlfsParams params = TestParams();
  params.forepart_enabled = true;
  params.forepart_bytes = 8 * kKiB;
  params.read_cache_bytes = 0;
  Reset(params);

  auto payload = RandomBytes(64 * kKiB, 33);
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/fp/file", payload, payload.size())).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // A read inside the forepart answers from MV: milliseconds, no fetch.
  sim::TimePoint t0 = sim_->now();
  auto head = sim_->RunUntilComplete(olfs_->Read("/fp/file", 0, 4 * kKiB));
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(std::equal(head->begin(), head->end(), payload.begin()));
  EXPECT_LT(sim::ToMillis(sim_->now() - t0), 50.0);
  EXPECT_EQ(olfs_->fetches().fetches(), 0u);

  // A read past the forepart triggers the real fetch.
  t0 = sim_->now();
  auto tail = sim_->RunUntilComplete(
      olfs_->Read("/fp/file", 32 * kKiB, 1 * kKiB));
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(std::equal(tail->begin(), tail->end(),
                         payload.begin() + 32 * kKiB));
  EXPECT_GT(ToSeconds(sim_->now() - t0), 60.0);
  EXPECT_EQ(olfs_->fetches().fetches(), 1u);
}

TEST_F(OlfsTest, ForepartServesFirstBytesQuickly) {
  OlfsParams params = TestParams();
  params.forepart_enabled = true;
  params.forepart_bytes = 4 * kKiB;
  params.read_cache_bytes = 0;
  Reset(params);

  auto payload = RandomBytes(100 * kKiB, 5);
  ASSERT_TRUE(sim_->RunUntilComplete(
                  olfs_->Create("/media/clip.ts", payload, payload.size()))
                  .ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // First bytes answer from MV in ~2 ms, no mechanical fetch.
  sim::TimePoint t0 = sim_->now();
  auto fore = sim_->RunUntilComplete(olfs_->ReadForepart("/media/clip.ts"));
  ASSERT_TRUE(fore.ok());
  EXPECT_LT(sim::ToMillis(sim_->now() - t0), 3.0);
  EXPECT_EQ(fore->size(), 4 * kKiB);
  EXPECT_TRUE(std::equal(fore->begin(), fore->end(), payload.begin()));
  EXPECT_EQ(olfs_->fetches().fetches(), 0u);
}

TEST_F(OlfsTest, DeterministicAcrossRuns) {
  auto run_once = [this]() {
    Reset(TestParams());
    for (int i = 0; i < 5; ++i) {
      ROS_CHECK(sim_->RunUntilComplete(
                    olfs_->Create("/det/f" + std::to_string(i),
                                  RandomBytes(5000, i), 5000))
                    .ok());
    }
    ROS_CHECK(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
    return sim_->now();
  };
  sim::TimePoint first = run_once();
  sim::TimePoint second = run_once();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace ros::olfs
