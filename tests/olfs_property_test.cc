// Property-based sweeps: random archival workloads pushed through the
// whole stack, checking the invariants the system promises:
//   P1 write/read round trip: every byte written is read back, from
//      whatever tier the data currently occupies;
//   P2 version monotonicity: stats report increasing versions; readable
//      historic versions return their original content;
//   P3 burn conservation: every closed image either awaits burning or has
//      a DILindex location, and parity membership covers all data images;
//   P4 recovery equivalence: after MV loss, a disc scan restores every
//      file whose image reached a disc, bit-exact;
//   P5 determinism: identical seeds produce identical simulated traces.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

struct Op {
  enum Kind { kCreate, kUpdate, kAppend, kRead, kUnlink } kind;
  int file;
};

class PropertySweep : public ::testing::TestWithParam<int> {};

std::vector<std::uint8_t> Content(int file, int version, std::size_t n) {
  Rng rng(static_cast<std::uint64_t>(file) * 1000003 + version);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

TEST_P(PropertySweep, RandomWorkloadInvariants) {
  const int seed = GetParam();
  Rng rng(seed);

  sim::Simulator sim;
  auto config = TestSystemConfig();
  RosSystem system(sim, config);
  OlfsParams params;
  params.disc_capacity_override = 4 * kMiB;
  params.read_cache_bytes = rng.Chance(0.5) ? 0 : 64 * kMiB;
  params.parity_images = rng.Chance(0.3) ? 2 : 1;
  Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = sim::Seconds(1);

  constexpr int kFiles = 12;
  // Oracle: per file, expected latest content (empty = deleted/absent).
  std::map<int, std::vector<std::uint8_t>> oracle;
  std::map<int, int> versions;

  auto path = [](int f) {
    return "/p/dir" + std::to_string(f % 3) + "/file" + std::to_string(f);
  };

  for (int step = 0; step < 60; ++step) {
    const int f = static_cast<int>(rng.Below(kFiles));
    const std::size_t size = 100 + rng.Below(48 * 1024);
    const int choice = static_cast<int>(rng.Below(10));
    if (choice < 3) {  // create
      auto data = Content(f, versions[f] + 1, size);
      Status status = sim.RunUntilComplete(olfs.Create(path(f), data));
      if (oracle.count(f) && !oracle[f].empty()) {
        EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
      } else if (status.ok()) {
        oracle[f] = data;
        ++versions[f];
      }
    } else if (choice < 5) {  // update
      auto data = Content(f, versions[f] + 1, size);
      Status status = sim.RunUntilComplete(
          olfs.Update(path(f), data, data.size()));
      if (versions[f] == 0) {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(status.ok()) << status.ToString();
        oracle[f] = data;
        ++versions[f];
      }
    } else if (choice < 6) {  // append
      if (versions[f] > 0 && !oracle[f].empty()) {
        auto extra = Content(f, 900 + step, 1 + rng.Below(2000));
        Status status = sim.RunUntilComplete(olfs.Append(path(f), extra));
        ASSERT_TRUE(status.ok()) << status.ToString();
        oracle[f].insert(oracle[f].end(), extra.begin(), extra.end());
        auto info = sim.RunUntilComplete(olfs.Stat(path(f)));
        ASSERT_TRUE(info.ok());
        versions[f] = info->version;
      }
    } else if (choice < 9) {  // read (P1)
      if (versions[f] > 0 && !oracle[f].empty()) {
        const auto& expect = oracle[f];
        const std::uint64_t off = rng.Below(expect.size());
        const std::uint64_t len = 1 + rng.Below(expect.size() - off);
        auto data = sim.RunUntilComplete(olfs.Read(path(f), off, len));
        ASSERT_TRUE(data.ok()) << data.status().ToString();
        EXPECT_TRUE(std::equal(data->begin(), data->end(),
                               expect.begin() + static_cast<long>(off)))
            << "file " << f << " step " << step;
      }
    } else {  // unlink
      if (versions[f] > 0 && !oracle[f].empty()) {
        ASSERT_TRUE(sim.RunUntilComplete(olfs.Unlink(path(f))).ok());
        oracle[f].clear();
        ++versions[f];  // tombstone consumes a version
      }
    }
    // Occasionally flush the pipeline mid-stream.
    if (step % 25 == 24) {
      ASSERT_TRUE(sim.RunUntilComplete(olfs.FlushAndDrain()).ok())
          << olfs.burns().last_error().ToString();
    }
  }
  ASSERT_TRUE(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());

  // P1 again, now that everything is burned/evicted per config.
  for (const auto& [f, expect] : oracle) {
    if (expect.empty()) {
      EXPECT_EQ(sim.RunUntilComplete(olfs.Read(path(f), 0, 1))
                    .status()
                    .code(),
                StatusCode::kNotFound);
      continue;
    }
    auto data = sim.RunUntilComplete(olfs.Read(path(f), 0, expect.size()));
    ASSERT_TRUE(data.ok()) << path(f) << ": " << data.status().ToString();
    EXPECT_EQ(*data, expect) << path(f);
  }

  // P2: stat versions match the oracle count.
  for (const auto& [f, v] : versions) {
    if (v > 0 && !oracle[f].empty()) {
      auto info = sim.RunUntilComplete(olfs.Stat(path(f)));
      ASSERT_TRUE(info.ok());
      EXPECT_EQ(info->version, v) << path(f);
    }
  }

  // P3: every non-open image is buffered-awaiting-burn or on a disc, and
  // burned arrays have full parity membership.
  for (const std::string& id : olfs.images().BurnedImages()) {
    auto record = olfs.images().Lookup(id);
    ASSERT_TRUE(record.ok());
    EXPECT_TRUE((*record)->disc.has_value());
    if (!(*record)->parity) {
      EXPECT_FALSE((*record)->array_members.empty()) << id;
    }
  }

  // P4: recovery equivalence for disc-resident latest versions.
  std::vector<mech::TrayAddress> trays;
  for (int t = 0; t < mech::kTraysPerRoller; ++t) {
    mech::TrayAddress tray = mech::TrayAddress::FromIndex(t);
    if (olfs.da_index().state(tray) == ArrayState::kUsed) {
      trays.push_back(tray);
    }
  }
  if (!trays.empty()) {
    // Which files' latest versions are fully on discs?
    std::map<int, std::vector<std::uint8_t>> disc_resident;
    for (const auto& [f, expect] : oracle) {
      if (expect.empty() || versions[f] == 0) {
        continue;
      }
      auto index = sim.RunUntilComplete(olfs.mv().Get(path(f)));
      if (!index.ok() || !index->Latest().ok()) {
        continue;
      }
      bool all_on_disc = true;
      for (const FilePart& part : (*index->Latest())->parts) {
        auto record = olfs.images().Lookup(part.image_id);
        all_on_disc &= record.ok() && (*record)->disc.has_value();
      }
      if (all_on_disc) {
        disc_resident[f] = expect;
      }
    }

    auto report = sim.RunUntilComplete(olfs.RebuildNamespace(trays));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    for (const auto& [f, expect] : disc_resident) {
      auto data = sim.RunUntilComplete(
          olfs.Read(path(f), 0, expect.size()));
      ASSERT_TRUE(data.ok())
          << path(f) << " after recovery: " << data.status().ToString();
      EXPECT_EQ(*data, expect) << path(f) << " after recovery";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(1, 13));

// P5: determinism — same seed, same simulated end time and counters.
TEST(PropertyDeterminism, IdenticalSeedsIdenticalTraces) {
  auto run = [](int seed) {
    sim::Simulator sim;
    RosSystem system(sim, TestSystemConfig());
    OlfsParams params;
    params.disc_capacity_override = 4 * kMiB;
    Olfs olfs(sim, &system, params);
    olfs.burns().burn_start_interval = sim::Seconds(1);
    Rng rng(seed);
    for (int i = 0; i < 20; ++i) {
      auto data = Content(i, 1, 100 + rng.Below(20000));
      ROS_CHECK(sim.RunUntilComplete(
                    olfs.Create("/d/f" + std::to_string(i), data)).ok());
    }
    ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
    return std::tuple{sim.now(), sim.events_processed(),
                      olfs.burns().arrays_burned(),
                      olfs.buckets().buckets_created()};
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

}  // namespace
}  // namespace ros::olfs
