// Concurrency tests of the fetch path (FTM): many clients hitting cold
// data at once must share mechanical work, not fight over it.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/join.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;
using sim::ToSeconds;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

class FetchConcurrencyTest : public ::testing::Test {
 protected:
  FetchConcurrencyTest() {
    SystemConfig config = TestSystemConfig();
    config.drive_sets = 2;
    system_ = std::make_unique<RosSystem>(sim_, config);
    OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    params.read_cache_bytes = 0;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  void PreserveCold(int files) {
    for (int i = 0; i < files; ++i) {
      ROS_CHECK(sim_.RunUntilComplete(
                    olfs_->Create("/cold/f" + std::to_string(i),
                                  RandomBytes(8 * kKiB, 500 + i)))
                    .ok());
    }
    ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  }

  // Destroy suspended background coroutines (prefetch tasks, burn loops)
  // while the system objects they borrow are still alive.
  ~FetchConcurrencyTest() override { sim_.Shutdown(); }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

// All the files live in one image on one disc: concurrent cold readers
// must share a single mechanical fetch.
TEST_F(FetchConcurrencyTest, ConcurrentReadsOfSameDiscShareOneFetch) {
  PreserveCold(6);
  sim::TimePoint t0 = sim_.now();
  std::vector<sim::Task<Status>> reads;
  for (int i = 0; i < 6; ++i) {
    reads.push_back([](Olfs* olfs, int idx) -> sim::Task<Status> {
      auto data = co_await olfs->Read("/cold/f" + std::to_string(idx), 0,
                                      8 * kKiB);
      if (!data.ok()) {
        co_return data.status();
      }
      if (*data != RandomBytes(8 * kKiB, 500 + idx)) {
        co_return DataLossError("content mismatch");
      }
      co_return OkStatus();
    }(olfs_.get(), i));
  }
  Status status = sim_.RunUntilComplete(sim::AllOk(sim_, std::move(reads)));
  EXPECT_TRUE(status.ok()) << status.ToString();
  // One mechanical load amortized across all six readers.
  EXPECT_EQ(olfs_->fetches().fetches(), 1u);
  // Image-level single-flight: one leader performed the optical read, the
  // other five were served from its parsed image.
  EXPECT_EQ(olfs_->shared_image_reads(), 5u);
  // Total stays near one load+read, not six.
  EXPECT_LT(ToSeconds(sim_.now() - t0), 110.0);
}

// Readers of two different arrays use the two bays concurrently.
TEST_F(FetchConcurrencyTest, DistinctArraysFetchInParallel) {
  // Two far-apart batches end up in different images; force two arrays by
  // flushing in between.
  ROS_CHECK(sim_.RunUntilComplete(
                olfs_->Create("/a/x", RandomBytes(8 * kKiB, 1))).ok());
  ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  ROS_CHECK(sim_.RunUntilComplete(
                olfs_->Create("/b/y", RandomBytes(8 * kKiB, 2))).ok());
  ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());

  sim::TimePoint t0 = sim_.now();
  std::vector<sim::Task<Status>> reads;
  for (const char* path : {"/a/x", "/b/y"}) {
    reads.push_back([](Olfs* olfs, std::string p) -> sim::Task<Status> {
      auto data = co_await olfs->Read(p, 0, 8 * kKiB);
      co_return data.status().ok() ? OkStatus() : data.status();
    }(olfs_.get(), path));
  }
  Status status = sim_.RunUntilComplete(sim::AllOk(sim_, std::move(reads)));
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(olfs_->fetches().fetches(), 2u);
  // Both bays work, but the single robotic arm serializes the two loads
  // (~69 s each); the drive reads overlap.
  const double seconds = ToSeconds(sim_.now() - t0);
  EXPECT_GT(seconds, 130.0);
  EXPECT_LT(seconds, 160.0);
}

// Concurrent updates of one file serialize on the per-path lock: every
// writer lands a distinct version, none are silently lost.
TEST_F(FetchConcurrencyTest, ConcurrentUpdatesAllBecomeVersions) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/w/shared", RandomBytes(100, 0))).ok());
  std::vector<sim::Task<Status>> writes;
  for (int i = 1; i <= 4; ++i) {
    writes.push_back([](Olfs* olfs, int k) -> sim::Task<Status> {
      co_return co_await olfs->Update(
          "/w/shared", RandomBytes(200, static_cast<std::uint64_t>(k)),
          200);
    }(olfs_.get(), i));
  }
  ASSERT_TRUE(
      sim_.RunUntilComplete(sim::AllOk(sim_, std::move(writes))).ok());
  auto info = sim_.RunUntilComplete(olfs_->Stat("/w/shared"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 5);
  // Every intermediate version is present and readable.
  for (int v = 2; v <= 5; ++v) {
    auto data = sim_.RunUntilComplete(
        olfs_->ReadVersion("/w/shared", v, 0, 200));
    EXPECT_TRUE(data.ok()) << "version " << v;
  }
}

// Concurrent creates of one path: exactly one wins.
TEST_F(FetchConcurrencyTest, ConcurrentCreatesOneWinner) {
  int successes = 0;
  int already = 0;
  std::vector<sim::Task<Status>> creates;
  for (int i = 0; i < 3; ++i) {
    creates.push_back([](Olfs* olfs, int k, int* ok_count,
                         int* exists_count) -> sim::Task<Status> {
      Status status = co_await olfs->Create(
          "/w/once", RandomBytes(50, static_cast<std::uint64_t>(k)));
      if (status.ok()) {
        ++*ok_count;
      } else if (status.code() == StatusCode::kAlreadyExists) {
        ++*exists_count;
      }
      co_return OkStatus();
    }(olfs_.get(), i, &successes, &already));
  }
  ASSERT_TRUE(
      sim_.RunUntilComplete(sim::AllOk(sim_, std::move(creates))).ok());
  EXPECT_EQ(successes, 1);
  EXPECT_EQ(already, 2);
  auto info = sim_.RunUntilComplete(olfs_->Stat("/w/once"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 1);
}

// A 40 MiB file splits over three 16 MiB images on three discs of ONE
// array. Concurrent readers of the three parts must be drained by a
// single load cycle: the first claims the freshly loaded bay, the other
// two get it handed off on release, no unload in between.
TEST_F(FetchConcurrencyTest, SameTrayBatchDrainsWithOneLoadCycle) {
  auto payload = RandomBytes(40 * kMiB, 901);
  ROS_CHECK(sim_.RunUntilComplete(
                olfs_->Create("/trayA/big", payload, payload.size())).ok());
  ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  ASSERT_NE(olfs_->fetch_scheduler(), nullptr);

  // One offset per part: the image boundaries sit near 16 and 32 MiB.
  const std::uint64_t offsets[] = {1 * kMiB, 20 * kMiB, 36 * kMiB};
  std::vector<sim::Task<Status>> reads;
  for (std::uint64_t offset : offsets) {
    reads.push_back([](Olfs* olfs, const std::vector<std::uint8_t>* expect,
                       std::uint64_t off) -> sim::Task<Status> {
      auto data = co_await olfs->Read("/trayA/big", off, 8 * kKiB);
      if (!data.ok()) {
        co_return data.status();
      }
      const std::vector<std::uint8_t> want(
          expect->begin() + static_cast<std::ptrdiff_t>(off),
          expect->begin() + static_cast<std::ptrdiff_t>(off + 8 * kKiB));
      co_return *data == want ? OkStatus()
                              : DataLossError("content mismatch");
    }(olfs_.get(), &payload, offset));
  }
  Status status = sim_.RunUntilComplete(sim::AllOk(sim_, std::move(reads)));
  EXPECT_TRUE(status.ok()) << status.ToString();

  const FetchSchedulerStats& stats = olfs_->fetch_scheduler()->stats();
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.handoffs, 2u);
  EXPECT_EQ(stats.max_batch, 3u);
  EXPECT_EQ(stats.loads_avoided(), 2u);
  EXPECT_EQ(olfs_->fetch_scheduler()->queue_depth(), 0);
}

// The unload victim is never an array that readers are queued for, even
// when plain LRU would pick it: with array A resident-and-in-demand and
// array B resident-and-idle, a fetch of array C must evict B.
TEST_F(FetchConcurrencyTest, VictimNeverEvictsTrayWithQueuedDemand) {
  // Array A holds two images (sparse files); arrays B and C hold one each.
  for (int i = 0; i < 2; ++i) {
    ROS_CHECK(sim_.RunUntilComplete(
                  olfs_->Create("/a/f" + std::to_string(i),
                                RandomBytes(8 * kKiB, 700 + i), 10 * kMiB))
                  .ok());
  }
  ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  ROS_CHECK(sim_.RunUntilComplete(
                olfs_->Create("/b/f", RandomBytes(8 * kKiB, 710))).ok());
  ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  ROS_CHECK(sim_.RunUntilComplete(
                olfs_->Create("/c/f", RandomBytes(8 * kKiB, 720))).ok());
  ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // Stage: A then B become resident; A's bay is the older (LRU) one, so a
  // recency-only policy would evict A.
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Read("/a/f0", 0, 8 * kKiB)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Read("/b/f", 0, 8 * kKiB)).ok());
  const FetchSchedulerStats& stats = olfs_->fetch_scheduler()->stats();
  ASSERT_EQ(stats.loads, 2u);

  // A reader of A's second image keeps demand on A while C's fetch picks
  // its victim.
  Status a1_status = UnavailableError("still running");
  sim_.Spawn([](Olfs* olfs, Status* out) -> sim::Task<void> {
    auto data = co_await olfs->Read("/a/f1", 0, 8 * kKiB);
    *out = data.status();
  }(olfs_.get(), &a1_status));
  sim_.RunFor(Seconds(2));
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Read("/c/f", 0, 8 * kKiB)).ok());
  sim_.RunFor(Seconds(60));
  EXPECT_TRUE(a1_status.ok()) << a1_status.ToString();

  // Each array was loaded exactly once: B (idle) was evicted for C, and A
  // (in demand) stayed put — a fourth load would mean A bounced out.
  EXPECT_EQ(stats.loads, 3u);
  EXPECT_EQ(stats.unloads, 1u);
  // A is still resident: re-reading it is a zero-mechanics parked hit.
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Read("/a/f0", 0, 8 * kKiB)).ok());
  EXPECT_EQ(stats.loads, 3u);
  EXPECT_GE(stats.parked_hits, 1u);
}

// Aging bound: a request stuck behind a continuous same-tray stream on a
// single-bay rack is promoted to strict FIFO once it crosses
// fetch_aging_bound — the hot array is evicted despite its demand and the
// starved reader completes within one unload/load cycle of the bound.
TEST(FetchSchedulerAgingTest, StarvedRequestPromotedWithinBound) {
  sim::Simulator sim;
  SystemConfig config = TestSystemConfig();
  config.drive_sets = 1;  // one bay: hot tray vs. far tray contend for it
  RosSystem system(sim, config);
  OlfsParams params;
  params.disc_capacity_override = 16 * kMiB;
  params.read_cache_bytes = 0;
  params.fetch_aging_bound = Seconds(30);
  Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = Seconds(1);

  // Hot array: four images; far array: one.
  for (int i = 0; i < 4; ++i) {
    ROS_CHECK(sim.RunUntilComplete(
                  olfs.Create("/hot/h" + std::to_string(i),
                              RandomBytes(8 * kKiB, 800 + i), 10 * kMiB))
                  .ok());
  }
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  ROS_CHECK(sim.RunUntilComplete(
                olfs.Create("/far/f", RandomBytes(8 * kKiB, 810))).ok());
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());

  // Two hot clients over disjoint image pairs keep the hot queue busy.
  Status hot_status[2] = {UnavailableError("running"),
                          UnavailableError("running")};
  for (int client = 0; client < 2; ++client) {
    sim.Spawn([](Olfs* o, int c, Status* out) -> sim::Task<void> {
      for (int k = 0; k < 2; ++k) {
        auto data =
            co_await o->Read("/hot/h" + std::to_string(c * 2 + k), 0,
                             8 * kKiB);
        if (!data.ok()) {
          *out = data.status();
          co_return;
        }
      }
      *out = OkStatus();
    }(&olfs, client, &hot_status[client]));
  }

  sim::TimePoint t0 = sim.now();
  auto far = sim.RunUntilComplete(olfs.Read("/far/f", 0, 8 * kKiB));
  ASSERT_TRUE(far.ok()) << far.status().ToString();
  EXPECT_EQ(*far, RandomBytes(8 * kKiB, 810));
  const double far_seconds = ToSeconds(sim.now() - t0);

  const FetchSchedulerStats& stats = olfs.fetch_scheduler()->stats();
  EXPECT_GE(stats.aged_dispatches, 1u);
  EXPECT_GE(stats.unloads, 1u);  // the demanded hot array was evicted
  // Bound + one unload/load cycle (+ reads in front), not unbounded.
  EXPECT_LT(far_seconds, 300.0);

  sim.RunFor(Seconds(800));  // hot clients reload their array and finish
  EXPECT_TRUE(hot_status[0].ok()) << hot_status[0].ToString();
  EXPECT_TRUE(hot_status[1].ok()) << hot_status[1].ToString();
  sim.Shutdown();
}

struct WorkloadResult {
  std::vector<std::pair<int, int>> dispatch_log;
  std::vector<std::vector<std::uint8_t>> bytes;  // per reader slot
};

// Fixed mixed workload (three arrays, six interleaved readers), used by
// the determinism and scheduler-on/off differential tests below.
WorkloadResult RunMixedWorkload(bool scheduler_enabled) {
  sim::Simulator sim;
  SystemConfig config = TestSystemConfig();
  config.drive_sets = 2;
  RosSystem system(sim, config);
  OlfsParams params;
  params.disc_capacity_override = 16 * kMiB;
  params.read_cache_bytes = 0;
  params.fetch_scheduler_enabled = scheduler_enabled;
  Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = Seconds(1);

  for (int a = 0; a < 3; ++a) {
    ROS_CHECK(sim.RunUntilComplete(
                  olfs.Create("/d/f" + std::to_string(a),
                              RandomBytes(8 * kKiB, 40 + a)))
                  .ok());
    ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  }

  WorkloadResult result;
  result.bytes.resize(6);
  std::vector<sim::Task<Status>> reads;
  for (int r = 0; r < 6; ++r) {
    reads.push_back(
        [](Olfs* o, int slot, std::vector<std::uint8_t>* out)
            -> sim::Task<Status> {
          auto data = co_await o->Read("/d/f" + std::to_string(slot % 3),
                                       0, 8 * kKiB);
          if (data.ok()) {
            *out = *data;
          }
          co_return data.status();
        }(&olfs, r, &result.bytes[r]));
  }
  ROS_CHECK(
      sim.RunUntilComplete(sim::AllOk(sim, std::move(reads))).ok());
  if (olfs.fetch_scheduler() != nullptr) {
    result.dispatch_log = olfs.fetch_scheduler()->dispatch_log();
  }
  sim.Shutdown();
  return result;
}

// Same workload, same seed -> bit-identical dispatch order.
TEST(FetchSchedulerDeterminismTest, SameWorkloadSameDispatchOrder) {
  WorkloadResult first = RunMixedWorkload(/*scheduler_enabled=*/true);
  WorkloadResult second = RunMixedWorkload(/*scheduler_enabled=*/true);
  ASSERT_FALSE(first.dispatch_log.empty());
  EXPECT_EQ(first.dispatch_log, second.dispatch_log);
  EXPECT_EQ(first.bytes, second.bytes);
}

// Differential: the scheduler changes WHEN fetches happen, never WHAT a
// read returns — every reader sees bytes identical to the legacy FIFO
// path, and both match the originally written data.
TEST(FetchSchedulerDeterminismTest, SchedulerOnOffReadsAreByteIdentical) {
  WorkloadResult with = RunMixedWorkload(/*scheduler_enabled=*/true);
  WorkloadResult without = RunMixedWorkload(/*scheduler_enabled=*/false);
  ASSERT_EQ(with.bytes.size(), without.bytes.size());
  EXPECT_EQ(with.bytes, without.bytes);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(with.bytes[static_cast<std::size_t>(r)],
              RandomBytes(8 * kKiB, static_cast<std::uint64_t>(40 + r % 3)))
        << "reader " << r;
  }
}

}  // namespace
}  // namespace ros::olfs
