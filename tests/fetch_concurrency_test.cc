// Concurrency tests of the fetch path (FTM): many clients hitting cold
// data at once must share mechanical work, not fight over it.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/join.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;
using sim::ToSeconds;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

class FetchConcurrencyTest : public ::testing::Test {
 protected:
  FetchConcurrencyTest() {
    SystemConfig config = TestSystemConfig();
    config.drive_sets = 2;
    system_ = std::make_unique<RosSystem>(sim_, config);
    OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    params.read_cache_bytes = 0;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  void PreserveCold(int files) {
    for (int i = 0; i < files; ++i) {
      ROS_CHECK(sim_.RunUntilComplete(
                    olfs_->Create("/cold/f" + std::to_string(i),
                                  RandomBytes(8 * kKiB, 500 + i)))
                    .ok());
    }
    ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  }

  // Destroy suspended background coroutines (prefetch tasks, burn loops)
  // while the system objects they borrow are still alive.
  ~FetchConcurrencyTest() override { sim_.Shutdown(); }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

// All the files live in one image on one disc: concurrent cold readers
// must share a single mechanical fetch.
TEST_F(FetchConcurrencyTest, ConcurrentReadsOfSameDiscShareOneFetch) {
  PreserveCold(6);
  sim::TimePoint t0 = sim_.now();
  std::vector<sim::Task<Status>> reads;
  for (int i = 0; i < 6; ++i) {
    reads.push_back([](Olfs* olfs, int idx) -> sim::Task<Status> {
      auto data = co_await olfs->Read("/cold/f" + std::to_string(idx), 0,
                                      8 * kKiB);
      if (!data.ok()) {
        co_return data.status();
      }
      if (*data != RandomBytes(8 * kKiB, 500 + idx)) {
        co_return DataLossError("content mismatch");
      }
      co_return OkStatus();
    }(olfs_.get(), i));
  }
  Status status = sim_.RunUntilComplete(sim::AllOk(sim_, std::move(reads)));
  EXPECT_TRUE(status.ok()) << status.ToString();
  // One mechanical load amortized across all six readers.
  EXPECT_EQ(olfs_->fetches().fetches(), 1u);
  // Total stays near one load+read, not six.
  EXPECT_LT(ToSeconds(sim_.now() - t0), 110.0);
}

// Readers of two different arrays use the two bays concurrently.
TEST_F(FetchConcurrencyTest, DistinctArraysFetchInParallel) {
  // Two far-apart batches end up in different images; force two arrays by
  // flushing in between.
  ROS_CHECK(sim_.RunUntilComplete(
                olfs_->Create("/a/x", RandomBytes(8 * kKiB, 1))).ok());
  ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  ROS_CHECK(sim_.RunUntilComplete(
                olfs_->Create("/b/y", RandomBytes(8 * kKiB, 2))).ok());
  ROS_CHECK(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());

  sim::TimePoint t0 = sim_.now();
  std::vector<sim::Task<Status>> reads;
  for (const char* path : {"/a/x", "/b/y"}) {
    reads.push_back([](Olfs* olfs, std::string p) -> sim::Task<Status> {
      auto data = co_await olfs->Read(p, 0, 8 * kKiB);
      co_return data.status().ok() ? OkStatus() : data.status();
    }(olfs_.get(), path));
  }
  Status status = sim_.RunUntilComplete(sim::AllOk(sim_, std::move(reads)));
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(olfs_->fetches().fetches(), 2u);
  // Both bays work, but the single robotic arm serializes the two loads
  // (~69 s each); the drive reads overlap.
  const double seconds = ToSeconds(sim_.now() - t0);
  EXPECT_GT(seconds, 130.0);
  EXPECT_LT(seconds, 160.0);
}

// Concurrent updates of one file serialize on the per-path lock: every
// writer lands a distinct version, none are silently lost.
TEST_F(FetchConcurrencyTest, ConcurrentUpdatesAllBecomeVersions) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/w/shared", RandomBytes(100, 0))).ok());
  std::vector<sim::Task<Status>> writes;
  for (int i = 1; i <= 4; ++i) {
    writes.push_back([](Olfs* olfs, int k) -> sim::Task<Status> {
      co_return co_await olfs->Update(
          "/w/shared", RandomBytes(200, static_cast<std::uint64_t>(k)),
          200);
    }(olfs_.get(), i));
  }
  ASSERT_TRUE(
      sim_.RunUntilComplete(sim::AllOk(sim_, std::move(writes))).ok());
  auto info = sim_.RunUntilComplete(olfs_->Stat("/w/shared"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 5);
  // Every intermediate version is present and readable.
  for (int v = 2; v <= 5; ++v) {
    auto data = sim_.RunUntilComplete(
        olfs_->ReadVersion("/w/shared", v, 0, 200));
    EXPECT_TRUE(data.ok()) << "version " << v;
  }
}

// Concurrent creates of one path: exactly one wins.
TEST_F(FetchConcurrencyTest, ConcurrentCreatesOneWinner) {
  int successes = 0;
  int already = 0;
  std::vector<sim::Task<Status>> creates;
  for (int i = 0; i < 3; ++i) {
    creates.push_back([](Olfs* olfs, int k, int* ok_count,
                         int* exists_count) -> sim::Task<Status> {
      Status status = co_await olfs->Create(
          "/w/once", RandomBytes(50, static_cast<std::uint64_t>(k)));
      if (status.ok()) {
        ++*ok_count;
      } else if (status.code() == StatusCode::kAlreadyExists) {
        ++*exists_count;
      }
      co_return OkStatus();
    }(olfs_.get(), i, &successes, &already));
  }
  ASSERT_TRUE(
      sim_.RunUntilComplete(sim::AllOk(sim_, std::move(creates))).ok());
  EXPECT_EQ(successes, 1);
  EXPECT_EQ(already, 2);
  auto info = sim_.RunUntilComplete(olfs_->Stat("/w/once"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 1);
}

}  // namespace
}  // namespace ros::olfs
