// Tests of the NAS front end and §4.8's direct-writing mode.
#include "src/frontend/nas_server.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace ros::frontend {
namespace {

using olfs::Olfs;
using olfs::OlfsParams;
using olfs::RosSystem;
using sim::Seconds;
using sim::ToSeconds;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

class NasServerTest : public ::testing::Test {
 protected:
  NasServerTest() {
    system_ = std::make_unique<RosSystem>(sim_, olfs::TestSystemConfig());
    OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  // Destroy suspended background coroutines (delivery tasks, burn loops)
  // while the system objects they borrow are still alive.
  ~NasServerTest() override { sim_.Shutdown(); }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

TEST_F(NasServerTest, NormalModeRoundTrip) {
  NasServer nas(sim_, olfs_.get());
  auto payload = RandomBytes(32 * kKiB, 1);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  nas.Upload("/nas/a.bin", payload, payload.size())).ok());
  auto data = sim_.RunUntilComplete(
      nas.Download("/nas/a.bin", 0, payload.size()));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, payload);
  EXPECT_EQ(nas.delivered(), 0u);  // nothing staged in normal mode
}

TEST_F(NasServerTest, NormalModeUploadToExistingCreatesVersion) {
  NasServer nas(sim_, olfs_.get());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  nas.Upload("/nas/v.bin", RandomBytes(1000, 1), 1000)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  nas.Upload("/nas/v.bin", RandomBytes(900, 2), 900)).ok());
  auto info = sim_.RunUntilComplete(olfs_->Stat("/nas/v.bin"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 2);
}

// Direct mode acknowledges at wire speed: far faster than the FUSE path
// for large files, with delivery happening in the background.
TEST_F(NasServerTest, DirectModeAcksAtWireSpeed) {
  NasConfig direct;
  direct.direct_write_mode = true;
  NasServer nas(sim_, olfs_.get(), direct);
  NasServer normal(sim_, olfs_.get());

  const std::uint64_t big = 4 * kMiB;
  auto payload = RandomBytes(64 * kKiB, 7);

  sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(
                  normal.Upload("/nas/slow.bin", payload, big)).ok());
  const double normal_seconds = ToSeconds(sim_.now() - t0);

  t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(
                  nas.Upload("/nas/fast.bin", payload, big)).ok());
  const double direct_seconds = ToSeconds(sim_.now() - t0);

  EXPECT_LT(direct_seconds, normal_seconds);
  EXPECT_EQ(nas.staged_pending(), 1u);

  // Delivery completes in the background; the file is then fully in OLFS.
  ASSERT_TRUE(sim_.RunUntilComplete(nas.DrainDeliveries()).ok());
  EXPECT_EQ(nas.delivered(), 1u);
  EXPECT_EQ(nas.staged_pending(), 0u);
  auto data = sim_.RunUntilComplete(
      olfs_->Read("/nas/fast.bin", 0, payload.size()));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, payload);
}

TEST_F(NasServerTest, DirectModeCleansStagingFiles) {
  NasConfig direct;
  direct.direct_write_mode = true;
  NasServer nas(sim_, olfs_.get(), direct);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sim_.RunUntilComplete(
                    nas.Upload("/nas/d" + std::to_string(i),
                               RandomBytes(2000, i), 2000))
                    .ok());
  }
  ASSERT_TRUE(sim_.RunUntilComplete(nas.DrainDeliveries()).ok());
  EXPECT_EQ(nas.delivered(), 5u);
  // No staging files remain on the SSD tier.
  EXPECT_TRUE(olfs_->mv().volume()->List("/staging/").empty());
}

TEST_F(NasServerTest, DirectModeVersionsExistingFiles) {
  NasConfig direct;
  direct.direct_write_mode = true;
  NasServer nas(sim_, olfs_.get(), direct);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  nas.Upload("/nas/f", RandomBytes(500, 1), 500)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(nas.DrainDeliveries()).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  nas.Upload("/nas/f", RandomBytes(600, 2), 600)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(nas.DrainDeliveries()).ok());
  auto info = sim_.RunUntilComplete(olfs_->Stat("/nas/f"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 2);
  auto data = sim_.RunUntilComplete(olfs_->Read("/nas/f", 0, 600));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, RandomBytes(600, 2));
}

TEST_F(NasServerTest, DownloadMissingFails) {
  NasServer nas(sim_, olfs_.get());
  EXPECT_EQ(sim_.RunUntilComplete(nas.Download("/none", 0, 1))
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ros::frontend
