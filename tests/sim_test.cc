#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/sim/time.h"

namespace ros::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(Seconds(1.5), 1'500'000'000);
  EXPECT_EQ(Millis(2.0), 2'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(70.553)), 70.553);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(53)), 53.0);
}

TEST(SimTime, TransferTime) {
  // 100 MB at 100 MB/s = 1 second.
  EXPECT_EQ(TransferTime(100'000'000, 100'000'000.0), kSecond);
  EXPECT_EQ(TransferTime(0, 100.0), 0);
  EXPECT_EQ(TransferTime(100, 0.0), 0);
}

TEST(Simulator, CallbacksRunInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(Seconds(3), [&] { order.push_back(3); });
  sim.ScheduleAfter(Seconds(1), [&] { order.push_back(1); });
  sim.ScheduleAfter(Seconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Seconds(3));
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAfter(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Simulator, DelayAdvancesClock) {
  Simulator sim;
  auto task = [](Simulator& s) -> Task<void> {
    EXPECT_EQ(s.now(), 0);
    co_await s.Delay(Seconds(5));
    EXPECT_EQ(s.now(), Seconds(5));
    co_await s.Delay(Millis(250));
    EXPECT_EQ(s.now(), Seconds(5) + Millis(250));
  };
  sim.RunUntilComplete(task(sim));
}

TEST(Simulator, RunUntilCompleteReturnsValue) {
  Simulator sim;
  auto task = [](Simulator& s) -> Task<int> {
    co_await s.Delay(Seconds(1));
    co_return 42;
  };
  EXPECT_EQ(sim.RunUntilComplete(task(sim)), 42);
}

TEST(Simulator, NestedTasksCompose) {
  Simulator sim;
  auto inner = [](Simulator& s, int x) -> Task<int> {
    co_await s.Delay(Seconds(1));
    co_return x * 2;
  };
  auto outer = [&inner](Simulator& s) -> Task<int> {
    int a = co_await inner(s, 10);
    int b = co_await inner(s, a);
    co_return b;
  };
  EXPECT_EQ(sim.RunUntilComplete(outer(sim)), 40);
  EXPECT_EQ(sim.now(), Seconds(2));
}

TEST(Simulator, SpawnedTasksRunConcurrently) {
  Simulator sim;
  std::vector<int> log;
  auto worker = [&log](Simulator& s, int id, Duration d) -> Task<void> {
    co_await s.Delay(d);
    log.push_back(id);
  };
  sim.Spawn(worker(sim, 1, Seconds(2)));
  sim.Spawn(worker(sim, 2, Seconds(1)));
  sim.Spawn(worker(sim, 3, Seconds(3)));
  sim.Run();
  EXPECT_EQ(log, (std::vector<int>{2, 1, 3}));
  // Concurrent: total time is max, not sum.
  EXPECT_EQ(sim.now(), Seconds(3));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(Seconds(1), [&] { ++fired; });
  sim.ScheduleAfter(Seconds(10), [&] { ++fired; });
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Seconds(5));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ZeroDelayYieldsThroughQueue) {
  Simulator sim;
  std::vector<int> order;
  auto a = [&order](Simulator& s) -> Task<void> {
    order.push_back(1);
    co_await s.Delay(0);
    order.push_back(3);
  };
  sim.Spawn(a(sim));
  order.push_back(2);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ExceptionPropagatesFromTask) {
  Simulator sim;
  auto task = [](Simulator& s) -> Task<int> {
    co_await s.Delay(Seconds(1));
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(sim.RunUntilComplete(task(sim)), std::runtime_error);
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAfter(Seconds(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = []() {
    Simulator sim;
    std::vector<std::pair<TimePoint, int>> trace;
    auto worker = [&trace](Simulator& s, int id) -> Task<void> {
      for (int i = 0; i < 3; ++i) {
        co_await s.Delay(Seconds(id));
        trace.emplace_back(s.now(), id);
      }
    };
    for (int id = 1; id <= 4; ++id) {
      sim.Spawn(worker(sim, id));
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ros::sim
