// Tests of the object-storage adapter (§4.2's interface extension).
#include "src/frontend/object_store.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace ros::frontend {
namespace {

using olfs::Olfs;
using olfs::RosSystem;

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest() {
    system_ = std::make_unique<RosSystem>(sim_, olfs::TestSystemConfig());
    olfs::OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = sim::Seconds(1);
    store_ = std::make_unique<ObjectStore>(olfs_.get());
  }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
  std::unique_ptr<ObjectStore> store_;
};

TEST(ObjectPath, MappingAndValidation) {
  auto path = ObjectStore::ObjectPath("archive", "2016/run/a.dat");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/objects/archive/2016/run/a.dat");
  EXPECT_FALSE(ObjectStore::ObjectPath("", "k").ok());
  EXPECT_FALSE(ObjectStore::ObjectPath("b/ad", "k").ok());
  EXPECT_FALSE(ObjectStore::ObjectPath("b", "").ok());
  EXPECT_FALSE(ObjectStore::ObjectPath("b", "/lead").ok());
  EXPECT_FALSE(ObjectStore::ObjectPath("b", "trail/").ok());
  EXPECT_FALSE(ObjectStore::ObjectPath("b", "a//b").ok());
  EXPECT_FALSE(ObjectStore::ObjectPath("b", "a/../b").ok());
}

TEST(ObjectPath, EscapingReservedCharacters) {
  auto path = ObjectStore::ObjectPath("b", "weird#key%name");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/objects/b/weird%23key%25name");
  EXPECT_EQ(ObjectStore::UnescapeComponent("weird%23key%25name"),
            "weird#key%name");
}

TEST_F(ObjectStoreTest, PutGetHeadRoundTrip) {
  ASSERT_TRUE(sim_.RunUntilComplete(store_->CreateBucket("vault")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  store_->PutObject("vault", "docs/readme.txt",
                                    Bytes("hello object world")))
                  .ok());
  auto data = sim_.RunUntilComplete(
      store_->GetObject("vault", "docs/readme.txt"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("hello object world"));

  auto head = sim_.RunUntilComplete(
      store_->HeadObject("vault", "docs/readme.txt"));
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->size, 18u);
  EXPECT_EQ(head->version, 1);
}

TEST_F(ObjectStoreTest, OverwriteVersions) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  store_->PutObject("b", "k", Bytes("v1"))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  store_->PutObject("b", "k", Bytes("v2..."))).ok());
  auto head = sim_.RunUntilComplete(store_->HeadObject("b", "k"));
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->version, 2);
  auto v1 = sim_.RunUntilComplete(store_->GetObjectVersion("b", "k", 1));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, Bytes("v1"));
  auto latest = sim_.RunUntilComplete(store_->GetObject("b", "k"));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, Bytes("v2..."));
}

TEST_F(ObjectStoreTest, DeleteTombstones) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  store_->PutObject("b", "gone", Bytes("x"))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(store_->DeleteObject("b", "gone")).ok());
  EXPECT_EQ(sim_.RunUntilComplete(store_->GetObject("b", "gone"))
                .status()
                .code(),
            StatusCode::kNotFound);
  // Provenance survives the delete.
  auto v1 = sim_.RunUntilComplete(store_->GetObjectVersion("b", "gone", 1));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, Bytes("x"));
}

TEST_F(ObjectStoreTest, ListObjectsWithPrefix) {
  for (const char* key : {"logs/2016/jan", "logs/2016/feb", "logs/2017/jan",
                          "data/raw"}) {
    ASSERT_TRUE(sim_.RunUntilComplete(
                    store_->PutObject("b", key, Bytes("1"))).ok());
  }
  auto all = sim_.RunUntilComplete(store_->ListObjects("b"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);

  auto logs_2016 = sim_.RunUntilComplete(
      store_->ListObjects("b", "logs/2016/"));
  ASSERT_TRUE(logs_2016.ok());
  ASSERT_EQ(logs_2016->size(), 2u);
  EXPECT_EQ((*logs_2016)[0].key, "logs/2016/feb");
  EXPECT_EQ((*logs_2016)[1].key, "logs/2016/jan");

  EXPECT_EQ(sim_.RunUntilComplete(store_->ListObjects("nope"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ObjectStoreTest, ListBuckets) {
  ASSERT_TRUE(sim_.RunUntilComplete(store_->CreateBucket("alpha")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(store_->CreateBucket("beta")).ok());
  auto buckets = sim_.RunUntilComplete(store_->ListBuckets());
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(*buckets, (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(ObjectStoreTest, ObjectsSurviveBurningToDiscs) {
  auto payload = Bytes("cold object payload");
  ASSERT_TRUE(sim_.RunUntilComplete(
                  store_->PutObject("cold", "deep/key", payload)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  auto data = sim_.RunUntilComplete(store_->GetObject("cold", "deep/key"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, payload);
}

TEST_F(ObjectStoreTest, ReservedCharacterKeysRoundTrip) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  store_->PutObject("b", "odd#name%v", Bytes("ok"))).ok());
  auto data = sim_.RunUntilComplete(store_->GetObject("b", "odd#name%v"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("ok"));
  auto list = sim_.RunUntilComplete(store_->ListObjects("b"));
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].key, "odd#name%v");
}

}  // namespace
}  // namespace ros::frontend
