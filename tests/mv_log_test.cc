// Unit tests for the MV write-ahead log (DESIGN.md §5i): record framing,
// torn-tail detection, and the group-committing writer.
#include "src/olfs/mv_log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/disk/block_device.h"
#include "src/disk/volume.h"
#include "src/sim/fault.h"
#include "src/sim/join.h"
#include "src/sim/simulator.h"

namespace ros::olfs {
namespace {

using mvlog::Record;
using mvlog::RecordType;

TEST(MvLogRecord, EncodeDecodeRoundTrip) {
  const Record records[] = {
      {RecordType::kPut, "i/docs/a", "{\"entries\":[]}"},
      {RecordType::kRemove, "i/docs/a", ""},
      {RecordType::kPutState, "s/burn/cursor", "{\"at\":7}"},
      {RecordType::kPut, "i/", ""},  // empty value, minimal key
  };
  std::vector<std::uint8_t> buffer;
  for (const Record& record : records) {
    mvlog::AppendRecord(record, &buffer);
  }
  std::size_t offset = 0;
  for (const Record& want : records) {
    auto got = mvlog::DecodeRecord(buffer, &offset);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, want);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(MvLogRecord, DecodeRejectsEveryTruncation) {
  std::vector<std::uint8_t> buffer;
  mvlog::AppendRecord({RecordType::kPut, "i/k", "value-bytes"}, &buffer);
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    std::size_t offset = 0;
    auto got = mvlog::DecodeRecord(
        std::span<const std::uint8_t>(buffer.data(), cut), &offset);
    ASSERT_FALSE(got.ok()) << "decoded from a " << cut << "-byte prefix";
    EXPECT_TRUE(got.status().code() == StatusCode::kInvalidArgument ||
                got.status().code() == StatusCode::kDataLoss)
        << got.status().ToString();
    EXPECT_EQ(offset, 0u) << "failed decode must not advance the cursor";
  }
}

TEST(MvLogRecord, DecodeRejectsEveryBitFlip) {
  std::vector<std::uint8_t> buffer;
  mvlog::AppendRecord({RecordType::kPut, "i/k", "value-bytes"}, &buffer);
  for (std::size_t at = 0; at < buffer.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = buffer;
      flipped[at] ^= static_cast<std::uint8_t>(1u << bit);
      std::size_t offset = 0;
      auto got = mvlog::DecodeRecord(flipped, &offset);
      // Any accepted decode must at least be a different record caught by
      // nothing — which the CRC forbids: every flip must fail cleanly.
      ASSERT_FALSE(got.ok())
          << "bit " << bit << " at byte " << at << " went undetected";
      EXPECT_TRUE(got.status().code() == StatusCode::kInvalidArgument ||
                  got.status().code() == StatusCode::kDataLoss)
          << got.status().ToString();
    }
  }
}

TEST(MvLogRecord, HostileLengthsRejectedWithoutAllocation) {
  // Frame claiming a 4 GiB value: must fail on the length guard, not
  // attempt the allocation.
  std::vector<std::uint8_t> buffer(mvlog::kRecordHeaderBytes, 0);
  buffer[0] = static_cast<std::uint8_t>(RecordType::kPut);
  buffer[6] = 0xFF;
  buffer[7] = 0xFF;
  buffer[8] = 0xFF;
  buffer[9] = 0xFF;
  std::size_t offset = 0;
  auto got = mvlog::DecodeRecord(buffer, &offset);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(MvLogRecord, ScanStopsAtTornTail) {
  std::vector<std::uint8_t> buffer;
  for (int i = 0; i < 3; ++i) {
    mvlog::AppendRecord(
        {RecordType::kPut, "i/k" + std::to_string(i), "v"}, &buffer);
  }
  const std::size_t clean = buffer.size();
  // A fourth record whose tail never made it to the device.
  mvlog::AppendRecord({RecordType::kPut, "i/k3", "torn-away"}, &buffer);
  buffer.resize(clean + 9);

  std::vector<Record> scanned;
  const mvlog::ScanStats stats = mvlog::ScanRecords(
      buffer, [&scanned](Record r) { scanned.push_back(std::move(r)); });
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.valid_bytes, clean);
  EXPECT_TRUE(stats.torn);
  ASSERT_EQ(scanned.size(), 3u);
  EXPECT_EQ(scanned[2].key, "i/k2");
}

TEST(MvLogRecord, FileNamesOrderAndParse) {
  EXPECT_EQ(MvLog::FileName(1), "/mvwal.000000001");
  EXPECT_EQ(MvLog::FileName(123456789), "/mvwal.123456789");
  EXPECT_LT(MvLog::FileName(9), MvLog::FileName(10));  // lexicographic
  EXPECT_EQ(MvLog::SeqOfFileName("/mvwal.000000042"), 42u);
  EXPECT_FALSE(MvLog::SeqOfFileName("/mvwal.x00000042").has_value());
  EXPECT_FALSE(MvLog::SeqOfFileName("/mvseg.000000001.000000001").has_value());
}

// --- the group-committing writer ---------------------------------------

class MvLogWriterTest : public ::testing::Test {
 protected:
  MvLogWriterTest()
      : device_(sim_, "ssd", 64 * kMiB, disk::SsdPerf()),
        volume_(sim_, &device_, disk::MetadataVolumeParams()),
        log_(sim_, &volume_, MvLog::Options{}) {}

  sim::Task<Status> AppendOne(int i) {
    Record record{RecordType::kPut, "i/k" + std::to_string(i),
                  "value-" + std::to_string(i)};
    co_return co_await log_.Append(std::move(record));
  }

  // Fans out `count` concurrent appends and joins them.
  sim::Task<Status> AppendConcurrent(int base, int count) {
    std::vector<sim::Task<Status>> appends;
    appends.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      appends.push_back(AppendOne(base + i));
    }
    co_return co_await sim::AllOk(sim_, std::move(appends));
  }

  // Like AppendConcurrent, but records every member's own status (AllOk
  // only reports the first error) — the joined status is always OK.
  sim::Task<Status> AppendRecordingStatus(int i, std::vector<Status>* out) {
    Status status = co_await AppendOne(i);
    out->push_back(status);
    co_return OkStatus();
  }

  sim::Task<Status> AppendConcurrentRecording(int base, int count,
                                              std::vector<Status>* out) {
    std::vector<sim::Task<Status>> appends;
    for (int i = 0; i < count; ++i) {
      appends.push_back(AppendRecordingStatus(base + i, out));
    }
    co_return co_await sim::AllOk(sim_, std::move(appends));
  }

  sim::Task<Status> AppendsThenSync(int count) {
    std::vector<sim::Task<Status>> work;
    for (int i = 0; i < count; ++i) {
      work.push_back(AppendOne(i));
    }
    work.push_back(log_.Sync());
    co_return co_await sim::AllOk(sim_, std::move(work));
  }

  std::vector<Record> ReadWal(std::uint64_t seq) {
    auto bytes = sim_.RunUntilComplete(volume_.ReadAll(MvLog::FileName(seq)));
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    std::vector<Record> records;
    const mvlog::ScanStats stats = mvlog::ScanRecords(
        *bytes, [&records](Record r) { records.push_back(std::move(r)); });
    EXPECT_FALSE(stats.torn);
    return records;
  }

  sim::Simulator sim_;
  disk::StorageDevice device_;
  disk::Volume volume_;
  MvLog log_;
};

TEST_F(MvLogWriterTest, ConcurrentAppendersShareOneBatch) {
  ASSERT_TRUE(sim_.RunUntilComplete(AppendConcurrent(0, 64)).ok());

  const MvLog::Stats& stats = log_.stats();
  EXPECT_EQ(stats.records_appended, 64u);
  // All 64 writers were runnable inside one commit window: the flusher
  // lands them as a single volume append (group commit, the whole point).
  EXPECT_EQ(stats.batches_committed, 1u);
  EXPECT_EQ(stats.max_batch_records, 64u);
  EXPECT_EQ(stats.commit_failures, 0u);
  EXPECT_EQ(ReadWal(1).size(), 64u);
}

TEST_F(MvLogWriterTest, SequentialAppendersPayTheWindowEach) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sim_.RunUntilComplete(AppendOne(i)).ok());
  }
  const MvLog::Stats& stats = log_.stats();
  EXPECT_EQ(stats.records_appended, 5u);
  EXPECT_EQ(stats.batches_committed, 5u);  // nobody to coalesce with
  EXPECT_EQ(ReadWal(1).size(), 5u);
}

TEST_F(MvLogWriterTest, AdvanceSeqRotatesTheFile) {
  ASSERT_TRUE(sim_.RunUntilComplete(AppendOne(0)).ok());
  log_.AdvanceSeq();
  EXPECT_EQ(log_.current_seq(), 2u);
  ASSERT_TRUE(sim_.RunUntilComplete(AppendOne(1)).ok());

  EXPECT_EQ(ReadWal(1).size(), 1u);
  EXPECT_EQ(ReadWal(2).size(), 1u);

  // Records of the old generation are covered by a segment now: the old
  // file is deleted, the new one stays.
  ASSERT_TRUE(sim_.RunUntilComplete(log_.DeleteBelow(2)).ok());
  EXPECT_FALSE(volume_.Exists(MvLog::FileName(1)));
  EXPECT_TRUE(volume_.Exists(MvLog::FileName(2)));
  EXPECT_EQ(log_.min_seq(), 2u);
}

TEST_F(MvLogWriterTest, SyncWaitsForEverythingEnqueued) {
  ASSERT_TRUE(sim_.RunUntilComplete(AppendsThenSync(8)).ok());
  EXPECT_EQ(log_.stats().records_appended, 8u);
  EXPECT_EQ(ReadWal(1).size(), 8u);
}

TEST_F(MvLogWriterTest, DeviceFailureFailsTheWholeBatchThenRecovers) {
  sim::FaultInjector faults(/*seed=*/3);
  device_.set_fault_injector(&faults);
  faults.FailNth(sim::FaultKind::kHddFailure, "ssd", 1);

  std::vector<Status> first;
  ASSERT_TRUE(
      sim_.RunUntilComplete(AppendConcurrentRecording(0, 4, &first)).ok());
  ASSERT_EQ(first.size(), 4u);
  for (const Status& status : first) {
    EXPECT_FALSE(status.ok()) << "batch member missed the fan-out failure";
  }
  EXPECT_EQ(log_.stats().commit_failures, 1u);

  // The device comes back; the writer must not be wedged.
  device_.Revive();
  std::vector<Status> second;
  ASSERT_TRUE(
      sim_.RunUntilComplete(AppendConcurrentRecording(10, 4, &second)).ok());
  ASSERT_EQ(second.size(), 4u);
  for (const Status& status : second) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

TEST_F(MvLogWriterTest, ResetFailsPendingAndRetargets) {
  log_.Reset(/*seq=*/7, /*min_seq=*/7);
  EXPECT_EQ(log_.current_seq(), 7u);
  EXPECT_EQ(log_.min_seq(), 7u);
  ASSERT_TRUE(sim_.RunUntilComplete(AppendOne(0)).ok());
  EXPECT_EQ(ReadWal(7).size(), 1u);
  EXPECT_FALSE(volume_.Exists(MvLog::FileName(1)));
}

}  // namespace
}  // namespace ros::olfs
