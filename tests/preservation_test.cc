// Decades-scale preservation (DESIGN.md §5j): media aging determinism,
// the scrub/refresh migration pipeline, generation migration, and the
// sampled Merkle audit.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/drive/disc.h"
#include "src/olfs/maintenance.h"
#include "src/olfs/olfs.h"
#include "src/sim/fault.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;

constexpr std::int64_t kYearNs = 365LL * 24 * 3600 * 1000000000LL;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

// Aging that will visibly rot a 16 MiB disc within a few sim-years.
drive::MediaAgingParams AggressiveAging() {
  drive::MediaAgingParams aging;
  aging.enabled = true;
  aging.lse_per_sector_year = 0.002;
  aging.growth_per_year = 0.5;
  aging.seed = 99;
  return aging;
}

// ------------------------------------------------------------------
// Disc-level model: determinism and observation independence.
// ------------------------------------------------------------------

TEST(MediaAging, SameSeedSameDiscSameDamage) {
  const drive::MediaAgingParams aging = AggressiveAging();
  auto run = [&aging]() {
    drive::Disc disc("d0", drive::DiscType::kBdr25, 16 * kMiB);
    ROS_CHECK(disc.AppendSession("img", 8 * kMiB,
                                 std::vector<std::uint8_t>(8 * kMiB, 0xAB),
                                 /*closed=*/true)
                  .ok());
    disc.StampBirth(0);
    disc.AdvanceAging(5 * kYearNs, aging);
    return disc.ScrubForErrors();
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

// Damage at time T is a pure function of T — it does not depend on how
// many times the disc was observed along the way.
TEST(MediaAging, DamageIsObservationIndependent) {
  const drive::MediaAgingParams aging = AggressiveAging();
  auto make = []() {
    drive::Disc disc("d1", drive::DiscType::kBdr25, 16 * kMiB);
    ROS_CHECK(disc.AppendSession("img", 8 * kMiB,
                                 std::vector<std::uint8_t>(8 * kMiB, 0xCD),
                                 /*closed=*/true)
                  .ok());
    disc.StampBirth(0);
    return disc;
  };
  drive::Disc once = make();
  once.AdvanceAging(10 * kYearNs, aging);
  drive::Disc many = make();
  for (int step = 1; step <= 40; ++step) {
    many.AdvanceAging(step * kYearNs / 4, aging);
  }
  EXPECT_EQ(once.ScrubForErrors(), many.ScrubForErrors());
  EXPECT_EQ(once.aged_errors(), many.aged_errors());
}

TEST(MediaAging, DisabledModelNeverTouchesTheDisc) {
  drive::MediaAgingParams off;  // enabled = false
  drive::Disc disc("d2", drive::DiscType::kBdr25, 16 * kMiB);
  ROS_CHECK(disc.AppendSession("img", 4 * kMiB,
                               std::vector<std::uint8_t>(4 * kMiB, 1),
                               /*closed=*/true)
                .ok());
  disc.StampBirth(0);
  EXPECT_EQ(disc.AdvanceAging(50 * kYearNs, off), 0);
  EXPECT_TRUE(disc.ScrubForErrors().empty());
  EXPECT_EQ(disc.aged_errors(), 0u);
  // A blank disc never rots either, even with the model on.
  drive::Disc blank("d3", drive::DiscType::kBdr25, 16 * kMiB);
  blank.StampBirth(0);
  EXPECT_EQ(blank.AdvanceAging(50 * kYearNs, AggressiveAging()), 0);
}

// Later generations rot slower: same seed and burn, smaller factor.
TEST(MediaAging, DenserGenerationAgesSlower) {
  drive::MediaAgingParams aging = AggressiveAging();
  aging.lse_per_sector_year = 0.02;
  auto damage = [&aging](drive::DiscType type) {
    drive::Disc disc("gen", type, 16 * kMiB);
    ROS_CHECK(disc.AppendSession("img", 8 * kMiB,
                                 std::vector<std::uint8_t>(8 * kMiB, 7),
                                 /*closed=*/true)
                  .ok());
    disc.StampBirth(0);
    disc.AdvanceAging(10 * kYearNs, aging);
    return disc.aged_errors();
  };
  EXPECT_GT(damage(drive::DiscType::kBdr25),
            damage(drive::DiscType::kBdr100));
}

// ------------------------------------------------------------------
// Full-stack: scrub, refresh migration, audit.
// ------------------------------------------------------------------

class PreservationTest : public ::testing::Test {
 protected:
  ~PreservationTest() override {
    if (sim_ != nullptr) {
      sim_->Shutdown();
    }
  }

  static OlfsParams BaseParams() {
    OlfsParams params;
    params.disc_type = drive::DiscType::kBdr25;
    params.disc_capacity_override = 16 * kMiB;
    params.read_cache_bytes = 0;  // force optical reads
    return params;
  }

  void Reset(OlfsParams params) {
    if (sim_ != nullptr) {
      sim_->Shutdown();
    }
    olfs_.reset();
    system_.reset();
    sim_ = std::make_unique<sim::Simulator>();
    system_ = std::make_unique<RosSystem>(*sim_, TestSystemConfig());
    olfs_ = std::make_unique<Olfs>(*sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  Status Create(const std::string& path,
                const std::vector<std::uint8_t>& data) {
    return sim_->RunUntilComplete(olfs_->Create(path, data, data.size()));
  }

  void ExpectReadsBack(const std::string& path,
                       const std::vector<std::uint8_t>& expect) {
    auto data =
        sim_->RunUntilComplete(olfs_->Read(path, 0, expect.size()));
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, expect) << path;
  }

  // The image id behind `path` and the disc address it is burned on.
  std::string BurnedImageOf(const std::string& path) {
    auto index = sim_->RunUntilComplete(olfs_->mv().Get(path));
    ROS_CHECK(index.ok());
    return (*index->Latest())->parts[0].image_id;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

// Years of rot, then one scrub pass: damage is found, repaired from
// parity, and the rotting arrays are refreshed onto fresh media — after
// which every acked byte still reads back clean.
TEST_F(PreservationTest, ScrubRepairsRotAndRefreshesArrays) {
  OlfsParams params = BaseParams();
  params.media_aging = AggressiveAging();
  // The archival layout (P+Q) with a rot rate that damages discs without
  // shredding all of D, P and Q at once: one erasure per stream is what
  // the scrub is designed to catch and repair between passes.
  params.media_aging.lse_per_sector_year = 0.00025;
  params.parity_images = 2;
  params.scrub_refresh_enabled = true;
  Reset(params);

  std::map<std::string, std::vector<std::uint8_t>> acked;
  for (int i = 0; i < 4; ++i) {
    const std::string path = "/keep/f" + std::to_string(i);
    auto payload = RandomBytes(24 * kKiB + i * 3000, 70 + i);
    ASSERT_TRUE(Create(path, payload).ok()) << path;
    acked[path] = std::move(payload);
  }
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // A decade in cold storage.
  sim_->RunFor(sim::Duration(10 * kYearNs));

  auto pass = sim_->RunUntilComplete(olfs_->scrub().RunPass());
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_GT(pass->arrays, 0);
  EXPECT_GT(pass->bytes, 0u);
  // The aggressive model rots this much media in 10 years with near
  // certainty; repairs + a refresh must have happened.
  EXPECT_GT(pass->repairs + pass->arrays_refreshed, 0)
      << "expected decade-old media to show damage";
  EXPECT_EQ(olfs_->scrub().passes(), 1u);

  for (const auto& [path, expect] : acked) {
    ExpectReadsBack(path, expect);
  }
}

// With refresh disabled the scrub still repairs damaged members in place
// but never retires arrays.
TEST_F(PreservationTest, RepairOnlyModeNeverRetiresArrays) {
  OlfsParams params = BaseParams();
  params.media_aging = AggressiveAging();
  params.scrub_refresh_enabled = false;
  Reset(params);

  auto payload = RandomBytes(32 * kKiB, 5);
  ASSERT_TRUE(Create("/keep/solo", payload).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  sim_->RunFor(sim::Duration(10 * kYearNs));
  auto pass = sim_->RunUntilComplete(olfs_->scrub().RunPass());
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_EQ(pass->arrays_refreshed, 0);
  EXPECT_EQ(olfs_->scrub().refresh_burns(), 0u);
  ExpectReadsBack("/keep/solo", payload);
}

// Age-triggered refresh with generation migration: once the media
// crosses the age threshold the whole array moves to the next
// generation, and new discs come up denser.
TEST_F(PreservationTest, AgeTriggeredRefreshMigratesGenerations) {
  OlfsParams params = BaseParams();
  params.media_aging = AggressiveAging();
  // No damage needed: age alone triggers the refresh.
  params.media_aging.lse_per_sector_year = 0.0;
  params.refresh_age_years = 3.0;
  params.generation_migration_enabled = true;
  params.migration_disc_type = drive::DiscType::kBdr100;
  Reset(params);

  auto payload = RandomBytes(40 * kKiB, 8);
  ASSERT_TRUE(Create("/keep/migrate", payload).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
  EXPECT_EQ(olfs_->mech().media_type(), drive::DiscType::kBdr25);

  sim_->RunFor(sim::Duration(4 * kYearNs));
  auto pass = sim_->RunUntilComplete(olfs_->scrub().RunPass());
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_GT(pass->arrays_refreshed, 0);
  EXPECT_GT(pass->refresh_burns, 0);
  EXPECT_EQ(olfs_->mech().media_type(), drive::DiscType::kBdr100);

  // The refreshed copy lives on a new array; the old one is retired.
  EXPECT_GT(olfs_->da_index().CountState(ArrayState::kFailed), 0);
  ExpectReadsBack("/keep/migrate", payload);

  // Before the threshold nothing would have happened: a fresh pass on the
  // just-refreshed (young) media is a no-op.
  auto again = sim_->RunUntilComplete(olfs_->scrub().RunPass());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->arrays_refreshed, 0);
}

// The sampled Merkle audit: every burned array gets a manifest at burn
// time, a clean rack verifies with zero mismatches, and deliberate
// silent tampering (bit flips that read back without error) is provably
// detected — while the auditor reads only a fraction of the bytes.
TEST_F(PreservationTest, AuditDetectsSilentTampering) {
  OlfsParams params = BaseParams();
  params.audit_leaf_bytes = 4 * kKiB;
  Reset(params);

  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/audit/f" + std::to_string(i);
    ASSERT_TRUE(Create(path, RandomBytes(64 * kKiB, 90 + i)).ok());
    paths.push_back(path);
  }
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
  EXPECT_GT(olfs_->audit().roots_built(), 0u);
  EXPECT_GT(olfs_->audit().manifests_live(), 0u);

  // Clean media: full-coverage audit finds nothing.
  auto clean = sim_->RunUntilComplete(olfs_->scrub().RunAudit(1.0, 17));
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_GT(clean->manifests, 0);
  EXPECT_GT(clean->leaves_sampled, 0u);
  EXPECT_EQ(clean->mismatches, 0u);
  EXPECT_TRUE(clean->damaged.empty());

  // Tamper with one stored stream *silently*: the read path returns the
  // flipped bytes without any error, so only the hash chain can tell.
  const std::string victim = BurnedImageOf(paths[1]);
  auto record = olfs_->images().Lookup(victim);
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE((*record)->disc.has_value());
  drive::Disc* disc = olfs_->mech().DiscAt(*(*record)->disc);
  ASSERT_TRUE(disc->TamperSessionData(victim, 100, 0x40).ok());

  auto caught = sim_->RunUntilComplete(olfs_->scrub().RunAudit(1.0, 17));
  ASSERT_TRUE(caught.ok()) << caught.status().ToString();
  EXPECT_GT(caught->mismatches, 0u);
  ASSERT_FALSE(caught->damaged.empty());
  EXPECT_EQ(caught->damaged[0], victim);

  // Sampling determinism: the same seed chooses the same leaves.
  auto replay = sim_->RunUntilComplete(olfs_->scrub().RunAudit(0.25, 21));
  auto replay2 = sim_->RunUntilComplete(olfs_->scrub().RunAudit(0.25, 21));
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay2.ok());
  EXPECT_EQ(replay->leaves_sampled, replay2->leaves_sampled);
  EXPECT_EQ(replay->bytes_read, replay2->bytes_read);
  // A fractional sample reads fewer bytes than the stored total.
  EXPECT_GT(replay->bytes_read, 0u);
  EXPECT_LT(replay->bytes_read, replay->stored_bytes);
}

// Refresh burns rebuild the audit manifests: after a migration pass the
// retired tray's manifest is gone and the new array's manifest verifies.
TEST_F(PreservationTest, RefreshRebuildsAuditManifests) {
  OlfsParams params = BaseParams();
  params.media_aging = AggressiveAging();
  params.media_aging.lse_per_sector_year = 0.0;
  params.refresh_age_years = 2.0;
  params.audit_leaf_bytes = 4 * kKiB;
  Reset(params);

  ASSERT_TRUE(Create("/audit/refresh", RandomBytes(48 * kKiB, 3)).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
  const std::uint64_t live_before = olfs_->audit().manifests_live();
  ASSERT_GT(live_before, 0u);

  sim_->RunFor(sim::Duration(3 * kYearNs));
  auto pass = sim_->RunUntilComplete(olfs_->scrub().RunPass());
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  ASSERT_GT(pass->arrays_refreshed, 0);

  // Still exactly one live manifest (new array in, old tray out), and it
  // verifies clean against the new media.
  EXPECT_EQ(olfs_->audit().manifests_live(), live_before);
  EXPECT_GT(olfs_->audit().roots_built(), live_before);
  auto audit = sim_->RunUntilComplete(olfs_->scrub().RunAudit(1.0, 33));
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_GT(audit->manifests, 0);
  EXPECT_EQ(audit->mismatches, 0u);
}

// The maintenance report surfaces every preservation counter and
// round-trips through the console wire format.
TEST_F(PreservationTest, MaintenanceReportRoundTripsPreservationCounters) {
  OlfsParams params = BaseParams();
  params.media_aging = AggressiveAging();
  params.audit_leaf_bytes = 4 * kKiB;
  Reset(params);

  ASSERT_TRUE(Create("/mi/p", RandomBytes(32 * kKiB, 12)).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
  sim_->RunFor(sim::Duration(8 * kYearNs));
  ASSERT_TRUE(
      sim_->RunUntilComplete(olfs_->scrub().RunPass()).ok());
  ASSERT_TRUE(
      sim_->RunUntilComplete(olfs_->scrub().RunAudit(1.0, 2)).ok());

  Maintenance mi(olfs_.get());
  json::Value report = mi.StatusReport();
  ASSERT_TRUE(report.contains("preservation"));
  auto reparsed = json::Parse(report.Dump());
  ASSERT_TRUE(reparsed.ok());
  const json::Value& p = (*reparsed)["preservation"];
  EXPECT_EQ(p["scrub_passes"].as_int(), 1);
  EXPECT_GT(p["scrubbed_bytes"].as_int(), 0);
  EXPECT_GE(p["scrub_repairs"].as_int(), 0);
  EXPECT_GE(p["refresh_burns"].as_int(), 0);
  EXPECT_GE(p["arrays_refreshed"].as_int(), 0);
  EXPECT_GT(p["audit_roots_built"].as_int(), 0);
  EXPECT_GT(p["audit_manifests"].as_int(), 0);
  EXPECT_GT(p["audit_leaves_sampled"].as_int(), 0);
  EXPECT_GT(p["audit_bytes_read"].as_int(), 0);
  EXPECT_EQ(p["audit_mismatches"].as_int(), 0);
  // The counters the report reads are the live ones.
  EXPECT_EQ(static_cast<std::uint64_t>(p["scrubbed_bytes"].as_int()),
            olfs_->scrub().scrubbed_bytes());
  EXPECT_EQ(static_cast<std::uint64_t>(p["audit_roots_built"].as_int()),
            olfs_->audit().roots_built());
}

}  // namespace
}  // namespace ros::olfs
