// Corrupted-media recovery (§4.4): the namespace must be rebuildable from
// whatever bytes survive, which means every durable-state parser has to
// turn truncation, bit rot and hostile field values into clean
// kDataLoss / kInvalidArgument statuses — never an abort, throw, or UB.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/disk/block_device.h"
#include "src/olfs/index_file.h"
#include "src/olfs/metadata_volume.h"
#include "src/sim/simulator.h"
#include "src/udf/serializer.h"

namespace ros::olfs {
namespace {

bool IsCleanParseFailure(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument ||
         status.code() == StatusCode::kDataLoss;
}

std::string ValidIndexJson() {
  IndexFile index("/docs/report.pdf", EntryType::kFile);
  for (int i = 0; i < 3; ++i) {
    VersionEntry v;
    v.location = LocationKind::kBucket;
    v.total_size = 100 + static_cast<std::uint64_t>(i);
    v.parts.push_back({"img-0001", v.total_size});
    index.AddVersion(std::move(v), 15);
  }
  index.set_forepart({1, 2, 3, 4});
  return index.ToJson();
}

std::vector<std::uint8_t> ValidImageBytes() {
  udf::Image image("img-corrupt-test", 1 << 20);
  (void)image.MakeDirs("/docs");
  (void)image.AddFile("/docs/a", {'a', 'b', 'c'});
  (void)image.AddFile("/docs/b", std::vector<std::uint8_t>(64, 0x5A), 4096);
  (void)image.AddLink("/docs/c", "img-elsewhere");
  image.Close();
  return udf::Serializer::Serialize(image);
}

// --- index files ---

TEST(CorruptIndexFile, EveryTruncationFailsCleanly) {
  const std::string json = ValidIndexJson();
  for (std::size_t len = 0; len < json.size(); ++len) {
    auto parsed = IndexFile::FromJson(std::string_view(json).substr(0, len));
    ASSERT_FALSE(parsed.ok()) << "prefix length " << len;
    EXPECT_TRUE(IsCleanParseFailure(parsed.status()))
        << "prefix length " << len << ": " << parsed.status().ToString();
  }
}

TEST(CorruptIndexFile, EveryBitFlipParsesOrFailsCleanly) {
  const std::string json = ValidIndexJson();
  for (std::size_t pos = 0; pos < json.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = json;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      auto parsed = IndexFile::FromJson(mutated);
      if (!parsed.ok()) {
        EXPECT_TRUE(IsCleanParseFailure(parsed.status()))
            << "pos " << pos << " bit " << bit << ": "
            << parsed.status().ToString();
      }
    }
  }
}

TEST(CorruptIndexFile, TypeConfusedFieldsRejected) {
  // Every field with the wrong JSON type must be InvalidArgument, not a
  // std::bad_variant_access crash (the pre-fuzzing decoder asserted types).
  const char* cases[] = {
      R"({"path":1,"type":"file","next_ver":1,"entries":[]})",
      R"({"path":"/a","type":7,"next_ver":1,"entries":[]})",
      R"({"path":"/a","type":"file","next_ver":"x","entries":[]})",
      R"({"path":"/a","type":"file","next_ver":1,"entries":{}})",
      R"({"path":"/a","type":"file","next_ver":1,"entries":[42]})",
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":true,"loc":"B","size":1,"parts":[]}]})",
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":1,"loc":9,"size":1,"parts":[]}]})",
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":1,"loc":"B","size":"big","parts":[]}]})",
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":1,"loc":"B","size":1,"parts":[null]}]})",
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":1,"loc":"B","size":1,"parts":[{"img":3,"size":1}]}]})",
      R"({"path":"/a","type":"file","next_ver":1,"entries":[],"forepart":12})",
      R"([1,2,3])",
      R"(null)",
  };
  for (const char* json : cases) {
    auto parsed = IndexFile::FromJson(json);
    ASSERT_FALSE(parsed.ok()) << json;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << json;
  }
}

TEST(CorruptIndexFile, HostileNumbersRejected) {
  const char* cases[] = {
      // Negative / zero next_ver, versions outside [1, next_ver).
      R"({"path":"/a","type":"file","next_ver":0,"entries":[]})",
      R"({"path":"/a","type":"file","next_ver":-3,"entries":[]})",
      R"({"path":"/a","type":"file","next_ver":99999999999999,"entries":[]})",
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":5,"loc":"B","size":1,"parts":[]}]})",
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":-1,"loc":"B","size":1,"parts":[]}]})",
      // Negative sizes would wrap to absurd uint64 values.
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":1,"loc":"B","size":-5,"parts":[]}]})",
      R"({"path":"/a","type":"file","next_ver":2,"entries":[{"ver":1,"loc":"B","size":1,"parts":[{"img":"i","size":-1}]}]})",
      // Doubles where integers belong (1e300 used to be a float-cast UB).
      R"({"path":"/a","type":"file","next_ver":1e300,"entries":[]})",
  };
  for (const char* json : cases) {
    auto parsed = IndexFile::FromJson(json);
    ASSERT_FALSE(parsed.ok()) << json;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << json;
  }
}

TEST(CorruptIndexFile, DuplicateKeysAreDefinedBehavior) {
  // JSON objects with duplicate keys: the decoder keeps the last value
  // (std::map assignment) — defined, no crash, and the result still obeys
  // the round-trip invariant.
  auto parsed = IndexFile::FromJson(
      R"({"path":"/dup","path":"/dup2","type":"file","type":"dir",)"
      R"("next_ver":1,"next_ver":1,"entries":[],"entries":[]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->path(), "/dup2");
  EXPECT_EQ(parsed->type(), EntryType::kDirectory);
  auto reparsed = IndexFile::FromJson(parsed->ToJson());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToJson(), parsed->ToJson());
}

// --- UDF image streams ---

TEST(CorruptUdfImage, EveryTruncationIsDataLoss) {
  const std::vector<std::uint8_t> bytes = ValidImageBytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto parsed = udf::Serializer::Parse(
        std::span<const std::uint8_t>(bytes.data(), len));
    ASSERT_FALSE(parsed.ok()) << "prefix length " << len;
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << "prefix length " << len << ": " << parsed.status().ToString();
  }
}

TEST(CorruptUdfImage, EveryBitFlipIsDataLoss) {
  // The stream ends with a CRC32 over everything before the anchor, so any
  // single-bit flip must surface as kDataLoss (never parse, never crash).
  const std::vector<std::uint8_t> bytes = ValidImageBytes();
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[pos] = static_cast<std::uint8_t>(mutated[pos] ^ (1u << bit));
      auto parsed = udf::Serializer::Parse(mutated);
      ASSERT_FALSE(parsed.ok()) << "pos " << pos << " bit " << bit;
      EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
          << "pos " << pos << " bit " << bit << ": "
          << parsed.status().ToString();
    }
  }
}

std::size_t FindPattern(const std::vector<std::uint8_t>& haystack,
                        const std::vector<std::uint8_t>& needle) {
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end());
  return it == haystack.end()
             ? haystack.size()
             : static_cast<std::size_t>(it - haystack.begin());
}

TEST(CorruptUdfImage, HugeLengthFieldIsDataLoss) {
  // Regression: a data_len of ~2^64 used to wrap the reader's `pos_ + n`
  // bounds check and walk off the buffer. Overwrite /docs/a's data_len
  // (the u64 right before the payload "abc") with all-ones.
  std::vector<std::uint8_t> bytes = ValidImageBytes();
  const std::size_t payload = FindPattern(bytes, {'a', 'b', 'c'});
  ASSERT_LT(payload, bytes.size());
  for (std::size_t i = payload - 8; i < payload; ++i) {
    bytes[i] = 0xFF;
  }
  auto parsed = udf::Serializer::Parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptUdfImage, TinyCapacityIsDataLoss) {
  // Regression: a corrupted capacity below the root-directory overhead used
  // to wrap free_bytes() to ~2^64 and accept everything. The capacity u64
  // sits right after the image id string.
  std::vector<std::uint8_t> bytes = ValidImageBytes();
  const std::string id = "img-corrupt-test";
  const std::size_t id_at =
      FindPattern(bytes, std::vector<std::uint8_t>(id.begin(), id.end()));
  ASSERT_LT(id_at, bytes.size());
  for (std::size_t i = id_at + id.size(); i < id_at + id.size() + 8; ++i) {
    bytes[i] = 0;
  }
  auto parsed = udf::Serializer::Parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

// --- end to end through the Metadata Volume ---

class MvCorruptionTest : public ::testing::Test {
 protected:
  MvCorruptionTest()
      : device_(sim_, "ssd", 64 * kMiB, disk::SsdPerf()),
        volume_(sim_, &device_, disk::MetadataVolumeParams()),
        mv_(&volume_) {}

  void WriteRaw(const std::string& path, const std::string& content) {
    const std::string name = MetadataVolume::IndexName(path);
    if (!volume_.Exists(name)) {
      ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create(name)).ok());
    }
    ASSERT_TRUE(sim_.RunUntilComplete(
                    volume_.WriteAll(name, {content.begin(), content.end()}))
                    .ok());
  }

  sim::Simulator sim_;
  disk::StorageDevice device_;
  disk::Volume volume_;
  MetadataVolume mv_;
};

TEST_F(MvCorruptionTest, GetOnRottedIndexFailsCleanly) {
  const std::string good = ValidIndexJson();
  // Torn write: only the first half of the index file made it to the SSD.
  WriteRaw("/torn", good.substr(0, good.size() / 2));
  auto torn = sim_.RunUntilComplete(mv_.Get("/torn"));
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kInvalidArgument);

  // Bit rot in the middle of the JSON.
  std::string rotted = good;
  rotted[rotted.size() / 2] =
      static_cast<char>(rotted[rotted.size() / 2] ^ 0x08);
  WriteRaw("/rotted", rotted);
  auto result = sim_.RunUntilComplete(mv_.Get("/rotted"));
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(MvCorruptionTest, RestoreFromSnapshotWithCorruptPayloads) {
  // A snapshot image can carry index files that rotted *before* the burn.
  // Restore copies bytes faithfully; the corruption must then surface as a
  // clean parse failure on Get, not poison the whole namespace.
  udf::Image snapshot("mv-snap-rot", 4 * kMiB);
  const std::string good = ValidIndexJson();
  ASSERT_TRUE(snapshot
                  .AddFile("/.mv/docs/good#idx",
                           {good.begin(), good.end()})
                  .ok());
  const std::string bad = good.substr(0, good.size() / 3);
  ASSERT_TRUE(snapshot
                  .AddFile("/.mv/docs/bad#idx", {bad.begin(), bad.end()})
                  .ok());
  snapshot.Close();

  ASSERT_TRUE(sim_.RunUntilComplete(mv_.RestoreFromSnapshot(snapshot)).ok());
  auto good_index = sim_.RunUntilComplete(mv_.Get("/docs/good"));
  ASSERT_TRUE(good_index.ok()) << good_index.status().ToString();
  EXPECT_EQ(good_index->path(), "/docs/report.pdf");

  auto bad_index = sim_.RunUntilComplete(mv_.Get("/docs/bad"));
  ASSERT_FALSE(bad_index.ok());
  EXPECT_EQ(bad_index.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MvCorruptionTest, StateBlobCorruptionFailsCleanly) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_.PutState("checkpoint", json::Value(json::Object{})))
                  .ok());
  // Overwrite the state blob with garbage.
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.WriteAll("/state/checkpoint",
                                   {0xFF, 0x00, 0x7B, 0x22}))
                  .ok());
  auto state = sim_.RunUntilComplete(mv_.GetState("checkpoint"));
  ASSERT_FALSE(state.ok());
  EXPECT_EQ(state.status().code(), StatusCode::kInvalidArgument);
}

// --- log-structured store: segment bit-flip sweep -----------------------

IndexFile SmallIndex(int i) {
  IndexFile index("/d/f" + std::to_string(i), EntryType::kFile);
  VersionEntry v;
  v.total_size = 100 + static_cast<std::uint64_t>(i);
  v.parts.push_back({"img-000000", v.total_size});
  index.AddVersion(std::move(v), 15);
  return index;
}

TEST(MvSegmentCorruption, BitFlipSweepNeverPoisonsRecovery) {
  // Store-level counterpart of mv_segment_test's exhaustive parser sweep:
  // for a sample of single-bit flips across a real flushed segment file,
  // recovery must quarantine the damaged segment (clean statuses, counted
  // in corrupt_segments) and leave an internally consistent, writable
  // store — never abort, hang, or resurrect inconsistent state.
  sim::Simulator sim;
  disk::StorageDevice device(sim, "ssd", 64 * kMiB, disk::SsdPerf());
  disk::Volume volume(sim, &device, disk::MetadataVolumeParams());
  MetadataVolume::Options options;
  options.log_structured = true;
  options.cache_capacity = 8;
  options.memtable_flush_bytes = 1 * kKiB;
  auto mv = std::make_unique<MetadataVolume>(sim, &volume, options);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(sim.RunUntilComplete(mv->Put(SmallIndex(i))).ok());
  }
  sim.RunFor(sim::Seconds(5));  // drain the background flushes
  ASSERT_GT(mv->store_stats().segment_count, 0u);
  mv.reset();  // crash; every recovery below opens a fresh store

  std::vector<std::string> segs = volume.List("/mvseg.");
  ASSERT_FALSE(segs.empty());
  std::sort(segs.begin(), segs.end());
  const std::string victim = segs.front();
  auto pristine = sim.RunUntilComplete(volume.ReadAll(victim));
  ASSERT_TRUE(pristine.ok()) << pristine.status().ToString();

  for (std::size_t at = 0; at < pristine->size(); at += 13) {
    SCOPED_TRACE("flip at byte " + std::to_string(at));
    std::vector<std::uint8_t> flipped = *pristine;
    flipped[at] ^= static_cast<std::uint8_t>(1u << (at % 8));
    ASSERT_TRUE(
        sim.RunUntilComplete(volume.WriteAll(victim, std::move(flipped)))
            .ok());

    mv = std::make_unique<MetadataVolume>(sim, &volume, options);
    ASSERT_TRUE(sim.RunUntilComplete(mv->Open()).ok());
    const MetadataVolume::StoreStats stats = mv->store_stats();
    EXPECT_EQ(stats.corrupt_segments, 1u);
    EXPECT_EQ(mv->index_count(), mv->AllPaths().size());
    mv.reset();

    // Put the pristine bytes back for the next flip.
    ASSERT_TRUE(
        sim.RunUntilComplete(volume.WriteAll(victim, *pristine)).ok());
  }
}

}  // namespace
}  // namespace ros::olfs
