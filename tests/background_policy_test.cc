// Tests of the background policies (§4.2 periodic MV snapshots, §4.3
// burning policies) and the burn-retry path (DAindex kFailed arrays).
//
// Note: background policy loops run forever, so these tests advance the
// clock with RunFor/RunUntilComplete rather than Run().
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

class BackgroundPolicyTest : public ::testing::Test {
 protected:
  BackgroundPolicyTest() {
    system_ = std::make_unique<RosSystem>(sim_, TestSystemConfig());
    OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

TEST_F(BackgroundPolicyTest, AutoFlushBurnsIdleData) {
  olfs_->StartBackgroundPolicies(/*mv_snapshot_interval=*/0,
                                 /*auto_flush_interval=*/Seconds(300));
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/idle/a", RandomBytes(4000, 1), 4000))
                  .ok());
  EXPECT_EQ(olfs_->burns().arrays_burned(), 0);

  // After the data sits idle past the flush interval, it burns by itself.
  sim_.RunFor(Seconds(1200));
  EXPECT_GE(olfs_->burns().arrays_burned(), 1);
  auto info = sim_.RunUntilComplete(olfs_->Stat("/idle/a"));
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info->location, LocationKind::kBucket);
}

TEST_F(BackgroundPolicyTest, AutoFlushLeavesActiveIngestAlone) {
  olfs_->StartBackgroundPolicies(0, Seconds(300));
  // Keep writing every 100 s: never idle for a full interval.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sim_.RunUntilComplete(
                    olfs_->Create("/busy/f" + std::to_string(i),
                                  RandomBytes(1000, i), 1000))
                    .ok());
    sim_.RunFor(Seconds(100));
  }
  EXPECT_EQ(olfs_->burns().arrays_burned(), 0);
}

TEST_F(BackgroundPolicyTest, PeriodicMvSnapshotsBurnWhenDirty) {
  olfs_->StartBackgroundPolicies(/*mv_snapshot_interval=*/Seconds(600),
                                 /*auto_flush_interval=*/Seconds(200));
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/snap/x", RandomBytes(2000, 3), 2000))
                  .ok());
  sim_.RunFor(Seconds(2000));

  int snapshots = 0;
  for (const std::string& id : olfs_->images().BurnedImages()) {
    snapshots += id.rfind("mv-snap-", 0) == 0;
  }
  EXPECT_GE(snapshots, 1);

  // No further writes: the snapshot loop stays quiet (no churn).
  sim_.RunFor(Seconds(3000));
  int snapshots_after = 0;
  for (const std::string& id : olfs_->images().BurnedImages()) {
    snapshots_after += id.rfind("mv-snap-", 0) == 0;
  }
  EXPECT_LE(snapshots_after, snapshots + 1);
}

TEST_F(BackgroundPolicyTest, BurnRetryMovesToFreshArrayOnBadMedia) {
  // Poison every disc of the first array (tray 0): pre-burn junk that
  // leaves no capacity, so the burn fails with ResourceExhausted.
  for (int i = 0; i < mech::kDiscsPerTray; ++i) {
    drive::Disc* disc =
        olfs_->mech().DiscAt({mech::TrayAddress::FromIndex(0), i});
    ROS_CHECK(disc->AppendSession("junk", disc->capacity(), {}, true).ok());
  }

  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/retry/f", RandomBytes(3000, 9), 3000))
                  .ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());

  // The first array is marked failed; the data burned onto the second.
  EXPECT_EQ(olfs_->da_index().state(mech::TrayAddress::FromIndex(0)),
            ArrayState::kFailed);
  EXPECT_EQ(olfs_->burns().arrays_burned(), 1);
  auto index = sim_.RunUntilComplete(olfs_->mv().Get("/retry/f"));
  ASSERT_TRUE(index.ok());
  auto record = olfs_->images().Lookup((*index->Latest())->parts[0].image_id);
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE((*record)->disc.has_value());
  EXPECT_NE((*record)->disc->tray.ToIndex(), 0);
  auto data = sim_.RunUntilComplete(olfs_->Read("/retry/f", 0, 3000));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, RandomBytes(3000, 9));
}

// §4.7: scheduled scrubbing finds sector rot during idle periods and
// repairs + re-burns without operator involvement.
TEST_F(BackgroundPolicyTest, ScheduledScrubRepairsDuringIdle) {
  olfs_->StartBackgroundPolicies(0, 0, /*scrub_interval=*/Seconds(900));
  auto payload = RandomBytes(20 * kKiB, 21);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/rot/a", payload, payload.size())).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());

  auto index = sim_.RunUntilComplete(olfs_->mv().Get("/rot/a"));
  ASSERT_TRUE(index.ok());
  auto record = olfs_->images().Lookup((*index->Latest())->parts[0].image_id);
  ASSERT_TRUE(record.ok());
  const mech::DiscAddress damaged = *(*record)->disc;
  olfs_->mech().DiscAt(damaged)->CorruptSector(1);

  // Idle for a few scrub intervals: the loop detects, repairs, re-burns.
  sim_.RunFor(Seconds(3 * 900 + 2000));
  auto repaired_record =
      olfs_->images().Lookup((*index->Latest())->parts[0].image_id);
  ASSERT_TRUE(repaired_record.ok());
  ASSERT_TRUE((*repaired_record)->disc.has_value());
  EXPECT_NE(*(*repaired_record)->disc, damaged);  // re-burned elsewhere
  auto data = sim_.RunUntilComplete(
      olfs_->Read("/rot/a", 0, payload.size()));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, payload);
}

}  // namespace
}  // namespace ros::olfs
