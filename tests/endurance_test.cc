// Endurance test: a simulated year of archival operation with every
// background policy running — monthly ingest bursts, sporadic analytics
// reads, media corruption events, scheduled scrubs, MV snapshots and
// auto-flushes. At the end, no resource may be leaked: every bay idle, no
// stuck burns, no stranded dirty bytes, and every preserved byte still
// readable.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/common/rng.h"
#include "src/olfs/maintenance.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;

std::vector<std::uint8_t> Payload(int file) {
  Rng rng(7000 + static_cast<std::uint64_t>(file));
  std::vector<std::uint8_t> out(2 * kKiB + rng.Below(30 * kKiB));
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

TEST(Endurance, OneSimulatedYearOfOperation) {
  sim::Simulator sim;
  SystemConfig config = TestSystemConfig();
  config.drive_sets = 2;
  config.hdd_capacity = 8 * kGiB;
  RosSystem rack(sim, config);

  OlfsParams params;
  params.disc_capacity_override = 8 * kMiB;
  params.read_cache_bytes = 32 * kMiB;  // modest: plenty of cold reads
  params.file_cache_bytes = 8 * kMiB;
  params.prefetch_siblings = 2;
  Olfs olfs(sim, &rack, params);
  olfs.burns().burn_start_interval = Seconds(2);
  olfs.StartBackgroundPolicies(/*mv_snapshot=*/Seconds(14 * 86400),
                               /*auto_flush=*/Seconds(2 * 86400),
                               /*scrub=*/Seconds(30 * 86400));

  Rng rng(2026);
  std::map<int, std::vector<std::uint8_t>> oracle;
  int next_file = 0;
  int corruptions = 0;

  constexpr sim::Duration kDay = 86400 * sim::kSecond;
  for (int day = 0; day < 365; ++day) {
    // Monthly ingest burst of ~20 objects.
    if (day % 30 == 3) {
      for (int i = 0; i < 20; ++i) {
        const int f = next_file++;
        auto data = Payload(f);
        ASSERT_TRUE(sim.RunUntilComplete(
                        olfs.Create("/year/m" + std::to_string(day / 30) +
                                        "/obj" + std::to_string(f),
                                    data))
                        .ok())
            << "day " << day;
        oracle[f] = std::move(data);
      }
    }
    // Sporadic analytics reads of random history.
    if (day % 7 == 5 && next_file > 0) {
      const int f = static_cast<int>(rng.Below(next_file));
      const auto& expect = oracle[f];
      auto data = sim.RunUntilComplete(
          olfs.Read("/year/m" + std::to_string((f / 20) ) + "/obj" +
                        std::to_string(f),
                    0, expect.size()));
      // Path reconstruction: month index is f/20 only because ingests are
      // 20 per month.
      ASSERT_TRUE(data.ok()) << "day " << day << " file " << f << ": "
                             << data.status().ToString();
      EXPECT_EQ(*data, expect) << "day " << day << " file " << f;
    }
    // Quarterly media degradation on a random burned disc.
    if (day % 90 == 60) {
      std::vector<std::string> data_images;
      for (const std::string& id : olfs.images().BurnedImages()) {
        auto record = olfs.images().Lookup(id);
        if (record.ok() && !(*record)->parity &&
            !(*record)->disc->tray.ToString().empty()) {
          data_images.push_back(id);
        }
      }
      if (!data_images.empty()) {
        auto record = olfs.images().Lookup(
            data_images[rng.Below(data_images.size())]);
        olfs.mech().DiscAt(*(*record)->disc)->CorruptSector(2);
        ++corruptions;
      }
    }
    sim.RunFor(kDay);
  }

  // Let the tail of the pipeline settle, then check the books.
  ASSERT_TRUE(sim.RunUntilComplete(olfs.FlushAndDrain()).ok())
      << olfs.burns().fatal_error().ToString();
  sim.RunFor(40 * kDay);  // one more scrub cycle for the last corruption
  ASSERT_TRUE(sim.RunUntilComplete(olfs.burns().DrainAll()).ok());

  EXPECT_EQ(olfs.burns().active_burns(), 0);
  for (int bay = 0; bay < olfs.mech().num_bays(); ++bay) {
    EXPECT_NE(olfs.mech().bay_state(bay), BayState::kBusy) << bay;
  }
  EXPECT_GT(olfs.burns().arrays_burned(), 5);
  EXPECT_GT(corruptions, 0);

  // Every object preserved over the year is still bit-exact.
  for (const auto& [f, expect] : oracle) {
    const std::string path = "/year/m" + std::to_string(f / 20) + "/obj" +
                             std::to_string(f);
    auto data = sim.RunUntilComplete(olfs.Read(path, 0, expect.size()));
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, expect) << path;
  }

  // The MI report parses and shows a consistent world.
  Maintenance mi(&olfs);
  auto report = json::Parse(mi.StatusReport().Dump());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ((*report)["pipeline"]["active_burns"].as_int(), 0);
}

}  // namespace
}  // namespace ros::olfs
