#include "src/common/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace ros::json {
namespace {

TEST(JsonValue, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
}

TEST(JsonValue, ScalarRoundTrip) {
  EXPECT_EQ(Value(true).Dump(), "true");
  EXPECT_EQ(Value(false).Dump(), "false");
  EXPECT_EQ(Value(nullptr).Dump(), "null");
  EXPECT_EQ(Value(42).Dump(), "42");
  EXPECT_EQ(Value(-7).Dump(), "-7");
  EXPECT_EQ(Value("hi").Dump(), "\"hi\"");
}

TEST(JsonValue, ObjectKeysSortedDeterministically) {
  Object obj;
  obj["zeta"] = Value(1);
  obj["alpha"] = Value(2);
  EXPECT_EQ(Value(std::move(obj)).Dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(JsonValue, NestedStructureDump) {
  Object inner;
  inner["id"] = Value(7);
  Array arr;
  arr.push_back(Value(std::move(inner)));
  arr.push_back(Value("x"));
  Object root;
  root["entries"] = Value(std::move(arr));
  EXPECT_EQ(Value(std::move(root)).Dump(), "{\"entries\":[{\"id\":7},\"x\"]}");
}

TEST(JsonValue, StringEscapes) {
  EXPECT_EQ(Value("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonValue, FieldAccessOnMissingKeyReturnsNull) {
  Object obj;
  obj["present"] = Value(1);
  Value v(std::move(obj));
  EXPECT_TRUE(v["absent"].is_null());
  EXPECT_TRUE(v.contains("present"));
  EXPECT_FALSE(v.contains("absent"));
  EXPECT_EQ(v["present"].as_int(), 1);
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(Parse("true")->as_bool(), true);
  EXPECT_EQ(Parse("-12")->as_int(), -12);
  EXPECT_DOUBLE_EQ(Parse("2.5")->as_double(), 2.5);
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("\"abc\"")->as_string(), "abc");
}

TEST(JsonParse, WhitespaceTolerated) {
  auto v = Parse("  { \"a\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)["a"].as_array().size(), 2u);
}

TEST(JsonParse, EscapeSequences) {
  auto v = Parse(R"("line1\nline2\t\"q\" A")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "line1\nline2\t\"q\" A");
}

TEST(JsonParse, UnicodeEscapeMultibyte) {
  auto v = Parse(R"("é中")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonParse, MalformedInputsRejected) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("{\"a\":1,}").ok());
}

TEST(JsonParse, DeepNestingGuard) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonDumpTo, AppendsWithoutClearingAndMatchesDump) {
  Object obj;
  obj["k"] = Value("v");
  obj["n"] = Value(17);
  Value v(std::move(obj));
  std::string out = "prefix:";
  v.DumpTo(out);
  EXPECT_EQ(out, "prefix:" + v.Dump());
  // Reusing the same buffer accumulates (callers clear between uses).
  v.DumpTo(out);
  EXPECT_EQ(out, "prefix:" + v.Dump() + v.Dump());
}

TEST(JsonAppend, QuotedMatchesDumpEscaping) {
  for (const char* input :
       {"plain", "a\"b\\c\nd\te", "\x01\x1f ok", "é中", ""}) {
    const std::string s(input);
    std::string via_append;
    AppendQuoted(via_append, s);
    EXPECT_EQ(via_append, Value(s).Dump()) << "for input " << s;
  }
}

TEST(JsonAppend, IntMatchesDump) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{7}, std::int64_t{-1},
                         std::int64_t{1234567890123},
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    std::string out;
    AppendInt(out, v);
    EXPECT_EQ(out, Value(v).Dump());
  }
}

TEST(JsonScanner, ConsumesCanonicalShape) {
  Scanner scanner(R"( {"name":"abc","n":-42,"flag":true} )");
  std::string name;
  std::int64_t n = 0;
  bool flag = false;
  EXPECT_TRUE(scanner.Consume('{'));
  EXPECT_TRUE(scanner.ConsumeKey("name"));
  EXPECT_TRUE(scanner.ReadString(&name));
  EXPECT_TRUE(scanner.Consume(','));
  EXPECT_TRUE(scanner.ConsumeKey("n"));
  EXPECT_TRUE(scanner.ReadInt(&n));
  EXPECT_TRUE(scanner.Consume(','));
  EXPECT_TRUE(scanner.ConsumeKey("flag"));
  EXPECT_TRUE(scanner.ReadBool(&flag));
  EXPECT_TRUE(scanner.Peek('}'));
  EXPECT_TRUE(scanner.Peek('}'));  // Peek consumed nothing
  EXPECT_TRUE(scanner.Consume('}'));
  EXPECT_TRUE(scanner.AtEnd());
  EXPECT_EQ(name, "abc");
  EXPECT_EQ(n, -42);
  EXPECT_TRUE(flag);
}

TEST(JsonScanner, BailsOnNonCanonicalInput) {
  // Escaped strings are valid JSON but not canonical-scanner territory.
  std::string out;
  EXPECT_FALSE(Scanner(R"("a\nb")").ReadString(&out));
  // Leading zeros and float forms are not ints.
  std::int64_t n = 0;
  EXPECT_FALSE(Scanner("007").ReadInt(&n));
  {
    Scanner s("2.5");
    EXPECT_FALSE(s.ReadInt(&n));
  }
  // Wrong key, wrong char, trailing garbage.
  EXPECT_FALSE(Scanner(R"("other":1)").ConsumeKey("name"));
  EXPECT_FALSE(Scanner("]").Consume('['));
  {
    Scanner s("true x");
    bool b = false;
    EXPECT_TRUE(s.ReadBool(&b));
    EXPECT_FALSE(s.AtEnd());
  }
}

TEST(JsonRoundTrip, DumpThenParseIsIdentity) {
  Object meta;
  meta["path"] = Value("/archive/2016/trace.bin");
  meta["size"] = Value(std::int64_t{123456789});
  Array versions;
  Object v1;
  v1["ver"] = Value(1);
  v1["loc"] = Value("B");
  v1["vol"] = Value("bucket-0007");
  versions.push_back(Value(std::move(v1)));
  meta["versions"] = Value(std::move(versions));
  Value original{std::move(meta)};

  auto reparsed = Parse(original.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, original);
  // Pretty output parses back to the same value too.
  auto repretty = Parse(original.DumpPretty());
  ASSERT_TRUE(repretty.ok());
  EXPECT_EQ(*repretty, original);
}

}  // namespace
}  // namespace ros::json
