// Unit tests for Writing Bucket Management (§4.3, §4.5).
#include "src/olfs/bucket_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/disk/block_device.h"
#include "src/olfs/disc_image_store.h"
#include "src/sim/simulator.h"
#include "src/udf/image.h"

namespace ros::olfs {
namespace {

class BucketManagerTest : public ::testing::Test {
 protected:
  BucketManagerTest() {
    params_.disc_capacity_override = 1 * kMiB;  // tiny buckets
    for (int i = 0; i < 2; ++i) {
      devices_.push_back(std::make_unique<disk::StorageDevice>(
          sim_, "d" + std::to_string(i), 256 * kMiB, disk::SsdPerf()));
      volumes_.push_back(std::make_unique<disk::Volume>(
          sim_, devices_.back().get(),
          disk::VolumeParams{.journal_metadata = false}));
    }
    buckets_ = std::make_unique<BucketManager>(
        sim_, params_,
        std::vector<disk::Volume*>{volumes_[0].get(), volumes_[1].get()},
        &images_);
    buckets_->on_image_closed = [this](const std::string& id) {
      closed_.push_back(id);
    };
  }

  WriteReceipt Write(const std::string& path, std::uint64_t logical,
                     int version = 1) {
    auto receipt = sim_.RunUntilComplete(buckets_->WriteFile(
        path, version, std::vector<std::uint8_t>(64, 0x5A), logical));
    ROS_CHECK(receipt.ok());
    return *receipt;
  }

  sim::Simulator sim_;
  OlfsParams params_;
  std::vector<std::unique_ptr<disk::StorageDevice>> devices_;
  std::vector<std::unique_ptr<disk::Volume>> volumes_;
  DiscImageStore images_;
  std::unique_ptr<BucketManager> buckets_;
  std::vector<std::string> closed_;
};

TEST(InternalPath, VersionQualification) {
  EXPECT_EQ(InternalPath("/a/b", 1), "/a/b");
  EXPECT_EQ(InternalPath("/a/b", 3), "/a/b#v3");
  EXPECT_EQ(SplitLinkPath("/a/b#v3", 2), "/a/b#v3#prev2");
}

TEST_F(BucketManagerTest, SmallFileSinglePart) {
  WriteReceipt receipt = Write("/f", 64);
  ASSERT_EQ(receipt.parts.size(), 1u);
  EXPECT_EQ(receipt.parts[0].image_id, "img-000000");
  EXPECT_EQ(receipt.total_size, 64u);
  EXPECT_TRUE(closed_.empty());
}

TEST_F(BucketManagerTest, FilesAccumulateInOneBucketUntilFull) {
  for (int i = 0; i < 5; ++i) {
    Write("/small" + std::to_string(i), 10 * kKiB);
  }
  EXPECT_EQ(buckets_->buckets_created(), 1);
  // All landed in the same image.
  auto record = images_.Lookup("img-000000");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ((*record)->image->file_count(), 5u);
}

TEST_F(BucketManagerTest, OversizeFileSplitsWithLinks) {
  // 2.5 MiB into 1 MiB buckets -> 3 parts.
  WriteReceipt receipt = Write("/huge", 2 * kMiB + 512 * kKiB);
  ASSERT_GE(receipt.parts.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& part : receipt.parts) {
    total += part.size;
  }
  EXPECT_EQ(total, 2 * kMiB + 512 * kKiB);
  // Earlier buckets closed; continuation images carry link files.
  EXPECT_GE(closed_.size(), 2u);
  auto second = images_.Lookup(receipt.parts[1].image_id);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE((*second)->image->Exists(SplitLinkPath("/huge", 1)));
  auto link = (*second)->image->Lookup(SplitLinkPath("/huge", 1));
  ASSERT_TRUE(link.ok());
  EXPECT_EQ((*link)->link_target_image, receipt.parts[0].image_id);
}

TEST_F(BucketManagerTest, BucketClosesWhenNearlyFull) {
  // Fill to within the closing threshold (§4.5): the bucket closes as
  // part of the write that exhausts it.
  Write("/filler", 1 * kMiB - 8 * kKiB);
  EXPECT_EQ(closed_.size(), 1u);
}

TEST_F(BucketManagerTest, BucketsAlternateAcrossVolumes) {
  Write("/a", 900 * kKiB);  // fills bucket 0 (closes via next write)
  Write("/b", 900 * kKiB);  // forces bucket 1
  Write("/c", 900 * kKiB);
  ASSERT_GE(buckets_->buckets_created(), 2);
  auto r0 = images_.Lookup("img-000000");
  auto r1 = images_.Lookup("img-000001");
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_NE((*r0)->volume_index, (*r1)->volume_index);
}

TEST_F(BucketManagerTest, AppendToOpenFileGrowsInPlace) {
  WriteReceipt receipt = Write("/log", 100);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  buckets_->AppendToOpenFile(
                      "/log", 1, receipt.parts[0].image_id,
                      std::vector<std::uint8_t>(50, 1), 50))
                  .ok());
  auto data = sim_.RunUntilComplete(
      buckets_->ReadBuffered(receipt.parts[0].image_id, "/log", 0, 150));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 150u);
  EXPECT_EQ((*data)[0], 0x5A);
  EXPECT_EQ((*data)[149], 0x01);
}

TEST_F(BucketManagerTest, AppendToClosedBucketFails) {
  WriteReceipt receipt = Write("/log", 100);
  ASSERT_TRUE(sim_.RunUntilComplete(buckets_->CloseCurrentBucket()).ok());
  EXPECT_EQ(sim_.RunUntilComplete(
                buckets_->AppendToOpenFile("/log", 1,
                                           receipt.parts[0].image_id,
                                           {1, 2}, 2))
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BucketManagerTest, ContinuationSkipsBucketHoldingEarlierPart) {
  // Stream-style continuation: part 0 exists in the open bucket; asking
  // for a continuation must roll to a fresh bucket, not collide.
  WriteReceipt first = Write("/stream", 100);
  auto more = sim_.RunUntilComplete(buckets_->WriteFile(
      "/stream", 1, {}, 10 * kKiB, /*first_part=*/1,
      first.parts[0].image_id));
  ASSERT_TRUE(more.ok());
  ASSERT_EQ(more->parts.size(), 1u);
  EXPECT_NE(more->parts[0].image_id, first.parts[0].image_id);
}

TEST_F(BucketManagerTest, VersionsCoexistInSameBucket) {
  Write("/v", 100, 1);
  Write("/v", 100, 2);
  auto record = images_.Lookup("img-000000");
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE((*record)->image->Exists("/v"));
  EXPECT_TRUE((*record)->image->Exists("/v#v2"));
}

TEST_F(BucketManagerTest, CloseChargesUdfMetadata) {
  Write("/meta-test", 100);
  auto record = images_.Lookup("img-000000");
  ASSERT_TRUE(record.ok());
  disk::Volume* volume = volumes_[(*record)->volume_index].get();
  const auto before = volume->FileSize((*record)->volume_file);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(buckets_->CloseCurrentBucket()).ok());
  const auto after = volume->FileSize((*record)->volume_file);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, *before);  // directory/entry metadata appended
}

TEST_F(BucketManagerTest, AdmitImageRegistersClosed) {
  auto image = std::make_shared<udf::Image>("ext-img", 1 * kMiB);
  ASSERT_TRUE(image->AddFile("/x", std::vector<std::uint8_t>{1}).ok());
  image->Close();
  ASSERT_TRUE(sim_.RunUntilComplete(buckets_->AdmitImage(image)).ok());
  auto record = images_.Lookup("ext-img");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ((*record)->tier, ImageTier::kBuffered);
  EXPECT_EQ(closed_.size(), 1u);
}

TEST_F(BucketManagerTest, PathOverheadExceedingCapacityRejected) {
  OlfsParams tiny = params_;
  tiny.disc_capacity_override = 3 * udf::kBlockSize;  // root + 1 entry
  BucketManager small(sim_, tiny,
                      std::vector<disk::Volume*>{volumes_[0].get()},
                      &images_);
  auto receipt = sim_.RunUntilComplete(
      small.WriteFile("/a/b/c/d/e/f", 1, {}, 1));
  EXPECT_EQ(receipt.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ros::olfs
