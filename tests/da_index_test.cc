#include "src/olfs/da_index.h"

#include <gtest/gtest.h>

namespace ros::olfs {
namespace {

TEST(DaIndex, StartsAllEmpty) {
  DaIndex index(2);
  EXPECT_EQ(index.CountState(ArrayState::kEmpty), 2 * mech::kTraysPerRoller);
  EXPECT_EQ(index.CountState(ArrayState::kUsed), 0);
}

TEST(DaIndex, AllocateAdvancesSequentially) {
  DaIndex index(1);
  auto first = index.AllocateEmpty();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->ToIndex(), 0);
  index.set_state(*first, ArrayState::kUsed);
  auto second = index.AllocateEmpty();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->ToIndex(), 1);
}

TEST(DaIndex, AllocateSkipsUsedAndFailed) {
  DaIndex index(1);
  index.set_state(mech::TrayAddress::FromIndex(0), ArrayState::kUsed);
  index.set_state(mech::TrayAddress::FromIndex(1), ArrayState::kFailed);
  auto tray = index.AllocateEmpty();
  ASSERT_TRUE(tray.ok());
  EXPECT_EQ(tray->ToIndex(), 2);
}

TEST(DaIndex, ExhaustionReported) {
  DaIndex index(1);
  for (int i = 0; i < mech::kTraysPerRoller; ++i) {
    auto tray = index.AllocateEmpty();
    ASSERT_TRUE(tray.ok());
    index.set_state(*tray, ArrayState::kUsed);
  }
  EXPECT_EQ(index.AllocateEmpty().status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DaIndex, StateTransitions) {
  DaIndex index(1);
  mech::TrayAddress tray{0, 10, 3};
  EXPECT_EQ(index.state(tray), ArrayState::kEmpty);
  index.set_state(tray, ArrayState::kUsed);
  EXPECT_EQ(index.state(tray), ArrayState::kUsed);
  index.set_state(tray, ArrayState::kFailed);
  EXPECT_EQ(index.state(tray), ArrayState::kFailed);
  EXPECT_EQ(index.CountState(ArrayState::kFailed), 1);
}

TEST(DaIndex, CursorWrapsAround) {
  DaIndex index(1);
  // Allocate two, free the first, exhaust the rest; the wrap-around scan
  // must find the freed one.
  auto a = index.AllocateEmpty();
  ASSERT_TRUE(a.ok());
  index.set_state(*a, ArrayState::kUsed);
  for (int i = 1; i < mech::kTraysPerRoller; ++i) {
    auto t = index.AllocateEmpty();
    ASSERT_TRUE(t.ok());
    index.set_state(*t, ArrayState::kUsed);
  }
  index.set_state(*a, ArrayState::kEmpty);
  auto again = index.AllocateEmpty();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToIndex(), a->ToIndex());
}

}  // namespace
}  // namespace ros::olfs
