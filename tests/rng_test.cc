#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace ros {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t v = rng.Between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be close to 0.5.
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Chance(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
}

TEST(Rng, RoughUniformityAcrossBuckets) {
  Rng rng(17);
  std::vector<int> buckets(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++buckets[rng.Below(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kN / 10, kN / 100);
  }
}

}  // namespace
}  // namespace ros
