#include "src/common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace ros {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such disc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such disc");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_NE(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
  EXPECT_TRUE(NotFoundError("a") != InternalError("a"));
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_FALSE(OkStatus() != Status());
}

TEST(StatusOr, ValueOr) {
  StatusOr<int> good = 42;
  StatusOr<int> bad = UnavailableError("drive busy");
  EXPECT_EQ(good.value_or(7), 42);
  EXPECT_EQ(bad.value_or(7), 7);

  StatusOr<std::string> s = NotFoundError("gone");
  EXPECT_EQ(s.value_or("fallback"), "fallback");
  StatusOr<std::unique_ptr<int>> moved = std::make_unique<int>(3);
  std::unique_ptr<int> p = std::move(moved).value_or(nullptr);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 3);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status Pipeline(int x, int* out) {
  ROS_ASSIGN_OR_RETURN(int h, Half(x));
  ROS_ASSIGN_OR_RETURN(int q, Half(h));
  *out = q;
  return OkStatus();
}

TEST(StatusMacros, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(Pipeline(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(Pipeline(6, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Pipeline(3, &out).code(), StatusCode::kInvalidArgument);
}

Status FailThrough() {
  ROS_RETURN_IF_ERROR(OkStatus());
  ROS_RETURN_IF_ERROR(DataLossError("burned sector"));
  return InternalError("unreached");
}

TEST(StatusMacros, ReturnIfError) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kDataLoss);
}

TEST(StatusCodeName, AllCodesNamed) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
}

}  // namespace
}  // namespace ros
