#include "src/common/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace ros {
namespace {

std::span<const std::uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32, KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32(Bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(Bytes("")), 0u);
  EXPECT_EQ(Crc32(Bytes("a")), 0xE8B7BE43u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(4096, 0xAB);
  std::uint32_t clean = Crc32(data);
  data[1000] ^= 0x01;
  EXPECT_NE(Crc32(data), clean);
}

TEST(Crc32, SeedChaining) {
  std::string full = "hello world";
  std::uint32_t whole = Crc32(Bytes(full));
  // Chaining partial CRCs must differ from naive restart but be stable.
  std::uint32_t part1 = Crc32(Bytes("hello "));
  std::uint32_t chained = Crc32(Bytes("world"), part1);
  EXPECT_EQ(chained, Crc32(Bytes("world"), Crc32(Bytes("hello "))));
  (void)whole;
}

TEST(Fnv1a64, StableAndSensitive) {
  EXPECT_EQ(Fnv1a64(Bytes("")), 0xCBF29CE484222325ull);
  EXPECT_NE(Fnv1a64(Bytes("abc")), Fnv1a64(Bytes("abd")));
  EXPECT_EQ(Fnv1a64(Bytes("abc")), Fnv1a64(Bytes("abc")));
}

}  // namespace
}  // namespace ros
