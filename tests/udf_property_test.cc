// Property tests of UDF image accounting invariants: used_bytes must equal
// what a fresh walk recomputes, CostOf must predict AddFile's actual
// consumption, and serialize/parse must preserve accounting across random
// trees with files, directories, links and appends.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/udf/image.h"
#include "src/udf/serializer.h"

namespace ros::udf {
namespace {

// Recomputes the image's byte accounting from a tree walk.
std::uint64_t RecomputeUsed(const Image& image) {
  std::uint64_t used = kEntryOverhead;  // root
  image.Walk([&](const std::string&, const Node& node) {
    used += kEntryOverhead;
    if (node.type == NodeType::kFile) {
      used += BlocksFor(node.logical_size) * kBlockSize;
    }
  });
  return used;
}

class UdfAccounting : public ::testing::TestWithParam<int> {};

TEST_P(UdfAccounting, UsedBytesMatchesWalkUnderRandomOperations) {
  Rng rng(GetParam());
  Image image("acct-" + std::to_string(GetParam()), 64 * kMiB);
  std::vector<std::string> files;

  for (int step = 0; step < 120; ++step) {
    const int op = static_cast<int>(rng.Below(10));
    const std::string dir = "/d" + std::to_string(rng.Below(4));
    if (op < 5) {  // add file
      const std::string path = dir + "/f" + std::to_string(step);
      const std::uint64_t logical = rng.Below(64 * kKiB);
      const std::uint64_t real = rng.Below(logical + 1);
      const std::uint64_t predicted = image.CostOf(path, logical);
      const std::uint64_t before = image.used_bytes();
      Status status = image.AddFile(
          path, std::vector<std::uint8_t>(real, 0x11), logical);
      if (status.ok()) {
        // CostOf must have predicted the exact consumption.
        EXPECT_EQ(image.used_bytes() - before, predicted) << path;
        files.push_back(path);
      }
    } else if (op < 7 && !files.empty()) {  // append
      const std::string& path = files[rng.Below(files.size())];
      const std::uint64_t grow = rng.Below(8 * kKiB);
      (void)image.AppendToFile(path, {}, grow);
    } else if (op < 9) {  // directory chain
      (void)image.MakeDirs(dir + "/sub" + std::to_string(rng.Below(3)));
    } else {  // link
      (void)image.AddLink(dir + "/link" + std::to_string(step), "other");
    }
    ASSERT_EQ(image.used_bytes(), RecomputeUsed(image)) << "step " << step;
    ASSERT_LE(image.used_bytes(), image.capacity());
  }

  // Serialize/parse preserves the accounting exactly.
  image.Close();
  auto parsed = Serializer::Parse(Serializer::Serialize(image));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->used_bytes(), image.used_bytes());
  EXPECT_EQ(parsed->file_count(), image.file_count());
  EXPECT_EQ(RecomputeUsed(*parsed), parsed->used_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdfAccounting, ::testing::Range(1, 9));

// WouldFit is exact: filling an image by WouldFit-guided writes never
// fails and stops precisely when the next write cannot fit.
TEST(UdfAccounting, WouldFitIsExactAtTheBoundary) {
  Rng rng(99);
  Image image("fit", 256 * kKiB);
  int added = 0;
  while (true) {
    const std::string path = "/x/f" + std::to_string(added);
    const std::uint64_t size = rng.Below(16 * kKiB);
    const bool fits = image.WouldFit(path, size);
    Status status = image.AddFile(path, {}, size);
    EXPECT_EQ(status.ok(), fits) << path;
    if (!status.ok()) {
      break;
    }
    ++added;
  }
  EXPECT_GT(added, 3);
}

}  // namespace
}  // namespace ros::udf
