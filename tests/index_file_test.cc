#include "src/olfs/index_file.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace ros::olfs {
namespace {

VersionEntry MakeEntry(LocationKind loc, const std::string& image,
                       std::uint64_t size) {
  VersionEntry entry;
  entry.location = loc;
  entry.total_size = size;
  entry.parts.push_back({image, size});
  return entry;
}

TEST(IndexFile, LocationCodesRoundTrip) {
  for (LocationKind kind : {LocationKind::kBucket, LocationKind::kImage,
                            LocationKind::kDisc}) {
    auto back = LocationFromCode(LocationCode(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(LocationFromCode('X').ok());
}

TEST(IndexFile, VersionsIncrementMonotonically) {
  IndexFile index("/a", EntryType::kFile);
  EXPECT_FALSE(index.has_versions());
  EXPECT_FALSE(index.Latest().ok());
  for (int i = 1; i <= 5; ++i) {
    index.AddVersion(MakeEntry(LocationKind::kBucket, "img", 10 * i), 15);
  }
  EXPECT_EQ(index.latest_version(), 5);
  auto latest = index.Latest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)->total_size, 50u);
  auto v2 = index.Version(2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ((*v2)->total_size, 20u);
}

// §4.6: the 15-entry ring overwrites the oldest entry when full.
TEST(IndexFile, RingOverwritesOldest) {
  IndexFile index("/a", EntryType::kFile);
  for (int i = 1; i <= 20; ++i) {
    index.AddVersion(MakeEntry(LocationKind::kBucket, "img", i), 15);
  }
  EXPECT_EQ(index.entries().size(), 15u);
  EXPECT_EQ(index.latest_version(), 20);
  // Versions 1..5 fell out of the ring; 6..20 remain.
  EXPECT_FALSE(index.Version(5).ok());
  EXPECT_TRUE(index.Version(6).ok());
  EXPECT_TRUE(index.Version(20).ok());
}

TEST(IndexFile, UpdateLatestKeepsVersionNumber) {
  IndexFile index("/a", EntryType::kFile);
  index.AddVersion(MakeEntry(LocationKind::kBucket, "img-1", 100), 15);
  index.AddVersion(MakeEntry(LocationKind::kBucket, "img-2", 200), 15);
  VersionEntry updated = MakeEntry(LocationKind::kImage, "img-2", 250);
  ASSERT_TRUE(index.UpdateLatest(updated).ok());
  auto latest = index.Latest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)->version, 2);
  EXPECT_EQ((*latest)->total_size, 250u);
  EXPECT_EQ((*latest)->location, LocationKind::kImage);
}

TEST(IndexFile, TombstoneHidesLatest) {
  IndexFile index("/a", EntryType::kFile);
  index.AddVersion(MakeEntry(LocationKind::kBucket, "img", 10), 15);
  VersionEntry tomb;
  tomb.tombstone = true;
  index.AddVersion(std::move(tomb), 15);
  EXPECT_FALSE(index.Latest().ok());
  // Historic version still reachable (data provenance, §4.6).
  EXPECT_TRUE(index.Version(1).ok());
}

TEST(IndexFile, JsonRoundTrip) {
  IndexFile index("/archive/data.bin", EntryType::kFile);
  VersionEntry entry = MakeEntry(LocationKind::kDisc, "img-000001", 5000);
  entry.parts.push_back({"img-000002", 7000});
  entry.total_size = 12000;
  index.AddVersion(std::move(entry), 15);
  index.set_forepart({0x01, 0xFF, 0x00, 0xAB});

  auto parsed = IndexFile::FromJson(index.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->path(), "/archive/data.bin");
  EXPECT_EQ(parsed->type(), EntryType::kFile);
  EXPECT_EQ(parsed->latest_version(), 1);
  auto latest = parsed->Latest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)->parts.size(), 2u);
  EXPECT_EQ((*latest)->parts[1].image_id, "img-000002");
  EXPECT_EQ((*latest)->total_size, 12000u);
  EXPECT_EQ(parsed->forepart(),
            (std::vector<std::uint8_t>{0x01, 0xFF, 0x00, 0xAB}));
  // Round-trip is byte-stable.
  EXPECT_EQ(parsed->ToJson(), index.ToJson());
}

TEST(IndexFile, DirectoryEntryJson) {
  IndexFile dir("/archive", EntryType::kDirectory);
  auto parsed = IndexFile::FromJson(dir.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type(), EntryType::kDirectory);
}

// §4.2: a typical index file is a few hundred bytes (the paper says ~388).
TEST(IndexFile, TypicalSizeMatchesPaper) {
  IndexFile index("/archive/2016/jan/records/file-000001.dat",
                  EntryType::kFile);
  index.AddVersion(MakeEntry(LocationKind::kDisc, "img-001234", 123456789),
                   15);
  EXPECT_GT(index.ApproximateSize(), 150u);
  EXPECT_LT(index.ApproximateSize(), 500u);
}

TEST(IndexFile, MalformedJsonRejected) {
  EXPECT_FALSE(IndexFile::FromJson("not json").ok());
  EXPECT_FALSE(IndexFile::FromJson("[]").ok());
  EXPECT_FALSE(IndexFile::FromJson(
                   R"({"path":"/a","type":"file","next_ver":2,)"
                   R"("entries":[{"ver":1,"loc":"Z","size":0,"parts":[]}]})")
                   .ok());
}

// A corpus of index files covering every encoded feature: directories,
// multi-part versions, tombstones, deleted-flag entries, foreparts, ring
// wraparound, and escape-needing paths.
std::vector<IndexFile> CorpusIndexes() {
  std::vector<IndexFile> corpus;
  corpus.emplace_back("/dir", EntryType::kDirectory);

  IndexFile multi("/a/multi", EntryType::kFile);
  VersionEntry entry = MakeEntry(LocationKind::kDisc, "img-000001", 5000);
  entry.parts.push_back({"img-000002", 7000});
  entry.total_size = 12000;
  multi.AddVersion(std::move(entry), 15);
  multi.set_forepart({0x00, 0x01, 0xFF});
  corpus.push_back(std::move(multi));

  IndexFile tomb("/a/tomb", EntryType::kFile);
  tomb.AddVersion(MakeEntry(LocationKind::kBucket, "img-1", 1), 15);
  VersionEntry dead;
  dead.tombstone = true;
  tomb.AddVersion(std::move(dead), 15);
  corpus.push_back(std::move(tomb));

  IndexFile ring("/a/ring", EntryType::kFile);
  for (int i = 1; i <= 20; ++i) {
    ring.AddVersion(MakeEntry(LocationKind::kImage, "img", i), 15);
  }
  corpus.push_back(std::move(ring));

  IndexFile escaped("/a/we\"ird\npath", EntryType::kFile);
  escaped.AddVersion(MakeEntry(LocationKind::kBucket, "b\\1", 3), 15);
  corpus.push_back(std::move(escaped));
  return corpus;
}

// The canonical-shape fast parser and the tree parser must agree on every
// document either of them accepts; ToJson must be byte-stable through both.
TEST(IndexFile, FastAndTreeParsersAgreeOnCorpus) {
  for (const IndexFile& index : CorpusIndexes()) {
    const std::string doc = index.ToJson();
    auto fast = IndexFile::FromJson(doc);
    auto tree = IndexFile::FromJsonTree(doc);
    ASSERT_TRUE(fast.ok()) << doc;
    ASSERT_TRUE(tree.ok()) << doc;
    EXPECT_EQ(fast->ToJson(), doc);
    EXPECT_EQ(tree->ToJson(), doc);
  }
}

TEST(IndexFile, NonCanonicalDocumentsFallBackToTreeParser) {
  // Same data, keys reordered: valid JSON, but not the shape ToJson emits.
  const std::string reordered =
      R"({"type":"file","path":"/x","next_ver":2,)"
      R"("entries":[{"loc":"B","ver":1,"del":false,"size":9,)"
      R"("parts":[{"size":9,"img":"img-7"}]}]})";
  auto via_tree = IndexFile::FromJsonTree(reordered);
  auto via_front_door = IndexFile::FromJson(reordered);
  ASSERT_TRUE(via_tree.ok()) << via_tree.status().ToString();
  ASSERT_TRUE(via_front_door.ok()) << via_front_door.status().ToString();
  EXPECT_EQ(via_tree->ToJson(), via_front_door->ToJson());
  EXPECT_EQ(via_front_door->path(), "/x");
  EXPECT_EQ((*via_front_door->Latest())->total_size, 9u);
}

TEST(IndexFile, ParsersRejectTheSameCorruptInputs) {
  const std::string good = CorpusIndexes()[1].ToJson();
  std::vector<std::string> corrupt;
  corrupt.push_back(good.substr(0, good.size() / 2));  // truncated
  corrupt.push_back(good + "garbage");                 // trailing bytes
  std::string flipped = good;
  flipped[good.find(':')] = ';';                       // structural damage
  corrupt.push_back(flipped);
  corrupt.push_back("{}");                             // fields missing
  for (const std::string& doc : corrupt) {
    EXPECT_FALSE(IndexFile::FromJson(doc).ok()) << doc;
    EXPECT_FALSE(IndexFile::FromJsonTree(doc).ok()) << doc;
  }
}

}  // namespace
}  // namespace ros::olfs
