// Tests of the streaming-handle API (the FUSE open/write*/release data
// path behind Fig 6's singlestream workloads).
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

class OlfsStreamTest : public ::testing::Test {
 protected:
  OlfsStreamTest() {
    system_ = std::make_unique<RosSystem>(sim_, TestSystemConfig());
    OlfsParams params;
    params.disc_capacity_override = 4 * kMiB;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  // Destroy suspended background coroutines (burn/snapshot/scrub loops)
  // while the system objects they borrow are still alive.
  ~OlfsStreamTest() override { sim_.Shutdown(); }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

TEST_F(OlfsStreamTest, StreamedWritesAccumulate) {
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Create("/s/f", {}, 0)).ok());
  auto part1 = RandomBytes(1000, 1);
  auto part2 = RandomBytes(2000, 2);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->AppendStream("/s/f", part1, part1.size())).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->AppendStream("/s/f", part2, part2.size())).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->CloseStream("/s/f")).ok());

  auto data = sim_.RunUntilComplete(olfs_->Read("/s/f", 0, 3000));
  ASSERT_TRUE(data.ok());
  std::vector<std::uint8_t> expect = part1;
  expect.insert(expect.end(), part2.begin(), part2.end());
  EXPECT_EQ(*data, expect);
}

TEST_F(OlfsStreamTest, ReadStreamServesWhileHandleOpen) {
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Create("/s/r", {}, 0)).ok());
  auto payload = RandomBytes(5000, 3);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->AppendStream("/s/r", payload, payload.size())).ok());
  auto data = sim_.RunUntilComplete(olfs_->ReadStream("/s/r", 1000, 2000));
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(std::equal(data->begin(), data->end(),
                         payload.begin() + 1000));
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->CloseStream("/s/r")).ok());
}

TEST_F(OlfsStreamTest, StreamSpillsAcrossBucketsWithLinks) {
  // Stream 10 MiB into 4 MiB buckets: parts chain across images.
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Create("/s/big", {}, 0)).ok());
  std::vector<std::uint8_t> expect;
  for (int i = 0; i < 10; ++i) {
    auto chunk = RandomBytes(1 * kMiB, 100 + i);
    expect.insert(expect.end(), chunk.begin(), chunk.end());
    ASSERT_TRUE(sim_.RunUntilComplete(
                    olfs_->AppendStream("/s/big", chunk, chunk.size()))
                    .ok())
        << i;
  }
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->CloseStream("/s/big")).ok());

  auto info = sim_.RunUntilComplete(olfs_->Stat("/s/big"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, expect.size());

  auto data = sim_.RunUntilComplete(
      olfs_->Read("/s/big", 0, expect.size()));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, expect);
  EXPECT_GE(olfs_->buckets().buckets_created(), 3);
}

TEST_F(OlfsStreamTest, StreamedFileSurvivesBurnAndRead) {
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Create("/s/cold", {}, 0)).ok());
  auto payload = RandomBytes(64 * kKiB, 7);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->AppendStream("/s/cold", payload, payload.size()))
                  .ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->CloseStream("/s/cold")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  auto data = sim_.RunUntilComplete(
      olfs_->Read("/s/cold", 0, payload.size()));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, payload);
}

TEST_F(OlfsStreamTest, CloseWithoutHandleIsNoop) {
  EXPECT_TRUE(sim_.RunUntilComplete(olfs_->CloseStream("/never")).ok());
}

TEST_F(OlfsStreamTest, AppendStreamToMissingFileFails) {
  EXPECT_FALSE(sim_.RunUntilComplete(
                   olfs_->AppendStream("/missing", {1}, 1)).ok());
}

TEST_F(OlfsStreamTest, SparseStreamKeepsLogicalSize) {
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->Create("/s/sparse", {}, 0)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  olfs_->AppendStream("/s/sparse", {}, 1 * kMiB)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->CloseStream("/s/sparse")).ok());
  auto info = sim_.RunUntilComplete(olfs_->Stat("/s/sparse"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 1 * kMiB);
  auto data = sim_.RunUntilComplete(olfs_->Read("/s/sparse", 100, 16));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, std::vector<std::uint8_t>(16, 0));
}

}  // namespace
}  // namespace ros::olfs
