#include "src/disk/block_device.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::disk {
namespace {

using sim::ToSeconds;

class BlockDeviceTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
};

TEST_F(BlockDeviceTest, WriteReadRoundTrip) {
  StorageDevice device(sim_, "hdd0", kGiB, HddPerf());
  std::vector<std::uint8_t> data{10, 20, 30, 40};
  ASSERT_TRUE(sim_.RunUntilComplete(device.Write(1000, data)).ok());
  auto read = sim_.RunUntilComplete(device.Read(1000, 4));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(BlockDeviceTest, UnwrittenRangesReadZero) {
  StorageDevice device(sim_, "hdd0", kGiB, HddPerf());
  auto read = sim_.RunUntilComplete(device.Read(12345, 8));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, std::vector<std::uint8_t>(8, 0));
}

TEST_F(BlockDeviceTest, CrossChunkBoundaryWrite) {
  StorageDevice device(sim_, "hdd0", kGiB, HddPerf());
  // 64 KiB chunks internally; write straddling a boundary.
  const std::uint64_t boundary = 64 * kKiB;
  std::vector<std::uint8_t> data(100, 0xEE);
  ASSERT_TRUE(sim_.RunUntilComplete(device.Write(boundary - 50, data)).ok());
  auto read = sim_.RunUntilComplete(device.Read(boundary - 50, 100));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(BlockDeviceTest, OutOfRangeRejected) {
  StorageDevice device(sim_, "hdd0", kMiB, HddPerf());
  EXPECT_EQ(sim_.RunUntilComplete(
                device.Write(kMiB - 1, std::vector<std::uint8_t>(2)))
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(sim_.RunUntilComplete(device.Read(kMiB, 1)).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(BlockDeviceTest, TransferTimeMatchesPerfModel) {
  StorageDevice device(sim_, "hdd0", 10 * kGiB, HddPerf());
  // 200 MB at 200 MB/s + 8 ms latency = 1.008 s.
  sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(
                  device.Write(0, std::vector<std::uint8_t>(200 * kMB)))
                  .ok());
  EXPECT_NEAR(ToSeconds(sim_.now() - t0), 1.008, 1e-6);
}

TEST_F(BlockDeviceTest, ConcurrentRequestsSerialize) {
  StorageDevice device(sim_, "hdd0", 10 * kGiB, HddPerf());
  sim::TimePoint t0 = sim_.now();
  for (int i = 0; i < 4; ++i) {
    sim_.Spawn([](StorageDevice* d, int idx) -> sim::Task<void> {
      Status s = co_await d->Write(idx * kMB,
                                   std::vector<std::uint8_t>(100 * kMB));
      ROS_CHECK(s.ok());
    }(&device, i));
  }
  sim_.Run();
  // 4 x (0.5 s + 8 ms), strictly serialized on the single spindle.
  EXPECT_NEAR(ToSeconds(sim_.now() - t0), 4 * 0.508, 1e-6);
}

TEST_F(BlockDeviceTest, FailedDeviceRejectsIo) {
  StorageDevice device(sim_, "hdd0", kGiB, HddPerf());
  device.Fail();
  EXPECT_EQ(sim_.RunUntilComplete(
                device.Write(0, std::vector<std::uint8_t>(10)))
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(sim_.RunUntilComplete(device.Read(0, 10)).status().code(),
            StatusCode::kUnavailable);
  device.Replace();
  EXPECT_TRUE(sim_.RunUntilComplete(
                  device.Write(0, std::vector<std::uint8_t>(10)))
                  .ok());
}

TEST_F(BlockDeviceTest, ReplaceClearsContents) {
  StorageDevice device(sim_, "hdd0", kGiB, HddPerf());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  device.Write(0, std::vector<std::uint8_t>{1, 2, 3}))
                  .ok());
  device.Fail();
  device.Replace();
  auto read = sim_.RunUntilComplete(device.Read(0, 3));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, std::vector<std::uint8_t>(3, 0));
}

TEST_F(BlockDeviceTest, VectoredIoChargesOneLatency) {
  StorageDevice device(sim_, "hdd0", 10 * kGiB, HddPerf());
  std::vector<StorageDevice::Segment> segs;
  for (int i = 0; i < 10; ++i) {
    segs.push_back({static_cast<std::uint64_t>(i) * 10 * kMB,
                    std::vector<std::uint8_t>(10 * kMB, 1)});
  }
  sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(device.WriteMulti(std::move(segs))).ok());
  // 100 MB at 200 MB/s + one 8 ms latency = 0.508 s.
  EXPECT_NEAR(ToSeconds(sim_.now() - t0), 0.508, 1e-6);

  std::vector<StorageDevice::Segment> reads;
  reads.push_back({0, std::vector<std::uint8_t>(4)});
  reads.push_back({10 * kMB, std::vector<std::uint8_t>(4)});
  ASSERT_TRUE(sim_.RunUntilComplete(device.ReadMulti(&reads)).ok());
  EXPECT_EQ(reads[0].data, std::vector<std::uint8_t>(4, 1));
  EXPECT_EQ(reads[1].data, std::vector<std::uint8_t>(4, 1));
}

TEST_F(BlockDeviceTest, TrafficCountersAccumulate) {
  StorageDevice device(sim_, "ssd0", kGiB, SsdPerf());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  device.Write(0, std::vector<std::uint8_t>(1000)))
                  .ok());
  ASSERT_TRUE(sim_.RunUntilComplete(device.Read(0, 400)).ok());
  EXPECT_EQ(device.bytes_written(), 1000u);
  EXPECT_EQ(device.bytes_read(), 400u);
}

}  // namespace
}  // namespace ros::disk
