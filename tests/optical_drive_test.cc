#include "src/drive/optical_drive.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/drive/disc.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::drive {
namespace {

using sim::Seconds;
using sim::ToSeconds;

std::unique_ptr<Disc> BlankDisc(DiscType type, const std::string& id = "d") {
  return std::make_unique<Disc>(id, type);
}

std::unique_ptr<Disc> BurnedDisc(const std::string& image,
                                 std::vector<std::uint8_t> data,
                                 std::uint64_t logical) {
  auto disc = BlankDisc(DiscType::kBdr25);
  ROS_CHECK(disc->AppendSession(image, logical, std::move(data), true).ok());
  return disc;
}

class OpticalDriveTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  std::unique_ptr<Disc> disc_;
};

TEST_F(OpticalDriveTest, InsertEjectLifecycle) {
  OpticalDrive drive(sim_, nullptr, 0);
  EXPECT_EQ(drive.state(), DriveState::kEmpty);
  disc_ = BlankDisc(DiscType::kBdr25);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());
  EXPECT_EQ(drive.state(), DriveState::kSleeping);
  auto second = BlankDisc(DiscType::kBdr25);
  EXPECT_EQ(drive.InsertDisc(second.get()).code(),
            StatusCode::kFailedPrecondition);
  auto out = drive.EjectDisc();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(drive.state(), DriveState::kEmpty);
  EXPECT_EQ(drive.EjectDisc().status().code(), StatusCode::kFailedPrecondition);
}

// §5.4: waking a sleeping drive costs ~2 s; VFS mount costs ~220 ms.
TEST_F(OpticalDriveTest, WakeAndMountDelays) {
  OpticalDrive drive(sim_, nullptr, 0);
  disc_ = BurnedDisc("img", {1, 2, 3}, kMB);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());
  sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(drive.EnsureAwake()).ok());
  EXPECT_EQ(sim_.now() - t0, Seconds(2.0));
  t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(drive.MountVfs()).ok());
  EXPECT_EQ(sim_.now() - t0, sim::Millis(220));
  // Idempotent once mounted.
  t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(drive.MountVfs()).ok());
  EXPECT_EQ(sim_.now(), t0);
  // Sleeping drops the mount.
  drive.Sleep();
  EXPECT_EQ(drive.state(), DriveState::kSleeping);
  EXPECT_FALSE(drive.vfs_mounted());
}

TEST_F(OpticalDriveTest, ReadReturnsBurnedBytes) {
  OpticalDrive drive(sim_, nullptr, 0);
  disc_ = BurnedDisc("img", {5, 6, 7, 8}, kMB);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());
  auto data = sim_.RunUntilComplete(drive.Read("img", 1, 3));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, (std::vector<std::uint8_t>{6, 7, 8}));
  EXPECT_EQ(drive.bytes_read(), 3u);
}

// Sequential continuation does not seek; switching files does.
TEST_F(OpticalDriveTest, SeekChargedOnlyOnHeadMovement) {
  OpticalDrive drive(sim_, nullptr, 0);
  auto disc = BlankDisc(DiscType::kBdr25);
  ASSERT_TRUE(disc->AppendSession("a", 10 * kMB, {}, true).ok());
  ASSERT_TRUE(disc->AppendSession("b", 10 * kMB, {}, true).ok());
  disc_ = std::move(disc);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(drive.MountVfs()).ok());

  // First read after mount: no seek (head parked at lead-in).
  sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(drive.Read("a", 0, kMB)).ok());
  sim::Duration first = sim_.now() - t0;

  // Sequential continuation: same transfer time, still no seek.
  t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(drive.Read("a", kMB, kMB)).ok());
  EXPECT_EQ(sim_.now() - t0, first);

  // File switch: one 100 ms seek on top.
  t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(drive.Read("b", 0, kMB)).ok());
  EXPECT_EQ(sim_.now() - t0, first + sim::Millis(100));
}

// Burning a full 25 GB disc takes ~675 s (Fig 8) on a standalone drive.
TEST_F(OpticalDriveTest, Burn25GbMatchesFigure8) {
  OpticalDrive drive(sim_, nullptr, 0);
  disc_ = BlankDisc(DiscType::kBdr25);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());
  sim::TimePoint t0 = sim_.now();
  auto result = sim_.RunUntilComplete(
      drive.BurnImage("img", 25 * kGB, std::vector<std::uint8_t>(64, 1)));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  EXPECT_EQ(result->bytes_burned, 25 * kGB);
  // Includes the 2 s wake.
  EXPECT_NEAR(ToSeconds(sim_.now() - t0), 675.0 + 2.0, 12.0);
  EXPECT_TRUE(drive.disc()->FindSession("img").ok());
}

// Burning a full 100 GB disc takes ~3757 s (Fig 10).
TEST_F(OpticalDriveTest, Burn100GbMatchesFigure10) {
  OpticalDrive drive(sim_, nullptr, 0);
  disc_ = BlankDisc(DiscType::kBdr100);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());
  sim::TimePoint t0 = sim_.now();
  auto result =
      sim_.RunUntilComplete(drive.BurnImage("img", 100 * kGB, {}));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(ToSeconds(sim_.now() - t0), 3757.0 + 2.0, 45.0);
}

TEST_F(OpticalDriveTest, BurnObserverSeesRampUp) {
  OpticalDrive drive(sim_, nullptr, 0);
  disc_ = BlankDisc(DiscType::kBdr25);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());
  std::vector<double> speeds;
  drive.burn_observer = [&](double, double speed_x) {
    speeds.push_back(speed_x);
  };
  ASSERT_TRUE(sim_.RunUntilComplete(drive.BurnImage("img", 25 * kGB, {})).ok());
  ASSERT_FALSE(speeds.empty());
  EXPECT_DOUBLE_EQ(speeds.front(), 1.6);
  EXPECT_DOUBLE_EQ(speeds.back(), 12.0);
}

TEST_F(OpticalDriveTest, WormDiscRejectsSecondImageBeyondCapacity) {
  OpticalDrive drive(sim_, nullptr, 0);
  disc_ = BlankDisc(DiscType::kBdr25);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(drive.BurnImage("a", 20 * kGB, {})).ok());
  auto result = sim_.RunUntilComplete(drive.BurnImage("b", 10 * kGB, {}));
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// §4.8's interrupt-and-resume policy: an in-flight append-mode burn stops
// at a chunk boundary, leaves an open session, and resumes later.
TEST_F(OpticalDriveTest, InterruptAndResumeAppendBurn) {
  OpticalDrive drive(sim_, nullptr, 0);
  disc_ = BlankDisc(DiscType::kBdr25);
  ASSERT_TRUE(drive.InsertDisc(disc_.get()).ok());

  // Interrupt roughly mid-burn.
  sim_.ScheduleAfter(Seconds(300), [&] { drive.RequestInterrupt(); });
  auto result = sim_.RunUntilComplete(drive.BurnImage(
      "img", 20 * kGB, std::vector<std::uint8_t>(100, 3),
      {.close_session = true, .append_mode = true}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->completed);
  EXPECT_GT(result->bytes_burned, 0u);
  EXPECT_LT(result->bytes_burned, 20 * kGB);
  EXPECT_FALSE(drive.disc()->sessions().back().closed);

  // Resume: completes the remaining bytes and closes the session.
  auto resumed = sim_.RunUntilComplete(drive.BurnImage(
      "img", 20 * kGB, std::vector<std::uint8_t>(100, 3),
      {.close_session = true, .append_mode = true}));
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->completed);
  EXPECT_EQ(resumed->bytes_burned, 20 * kGB);
  EXPECT_TRUE(drive.disc()->sessions().back().closed);
  // The metadata zone reserved by append mode consumed capacity.
  EXPECT_EQ(drive.disc()->burned_bytes(), 20 * kGB + kMetadataZoneBytes);
}

// Table 2: aggregate read speed of 12 drives is slightly below 12x single
// (282.5 MB/s for 25 GB media, 210.2 MB/s for 100 GB media).
TEST_F(OpticalDriveTest, AggregateReadSpeedMatchesTable2) {
  for (auto [type, expected_mb] :
       {std::pair{DiscType::kBdr25, 282.5},
        std::pair{DiscType::kBdr100, 210.2}}) {
    sim::Simulator sim;
    DriveSet set(sim, 0);
    std::vector<std::unique_ptr<Disc>> owned;
    const std::uint64_t bytes = 64 * kMB;
    for (int i = 0; i < set.size(); ++i) {
      auto disc = BlankDisc(type, "d" + std::to_string(i));
      ASSERT_TRUE(disc->AppendSession("img", bytes, {}, true).ok());
      owned.push_back(std::move(disc));
      ASSERT_TRUE(set.drive(i).InsertDisc(owned.back().get()).ok());
      // Pre-wake so the measurement covers pure transfer.
      ASSERT_TRUE(sim.RunUntilComplete(set.drive(i).MountVfs()).ok());
    }
    sim::TimePoint t0 = sim.now();
    for (int i = 0; i < set.size(); ++i) {
      sim.Spawn([](OpticalDrive* d, std::uint64_t n) -> sim::Task<void> {
        auto r = co_await d->Read("img", 0, n);
        ROS_CHECK(r.ok());
      }(&set.drive(i), bytes));
    }
    sim.Run();
    double seconds = ToSeconds(sim.now() - t0);
    double aggregate_mb = 12.0 * BytesToMB(bytes) / seconds;
    EXPECT_NEAR(aggregate_mb, expected_mb, expected_mb * 0.01)
        << "media type " << static_cast<int>(type);
  }
}

}  // namespace
}  // namespace ros::drive
