#include "src/mech/geometry.h"

#include <gtest/gtest.h>

namespace ros::mech {
namespace {

TEST(Geometry, PaperCapacityConstants) {
  // §3.2: 510 trays x 12 discs = 6120 discs per roller; 12240 per rack.
  EXPECT_EQ(kTraysPerRoller, 510);
  EXPECT_EQ(kDiscsPerRoller, 6120);
  EXPECT_EQ(kMaxDiscsPerRack, 12240);
  EXPECT_EQ(kLayersPerRoller, 85);
  EXPECT_EQ(kSlotsPerLayer, 6);
  EXPECT_EQ(kDiscsPerTray, 12);
}

TEST(TrayAddress, IndexRoundTrip) {
  for (int roller = 0; roller < kMaxRollers; ++roller) {
    for (int layer = 0; layer < kLayersPerRoller; layer += 7) {
      for (int slot = 0; slot < kSlotsPerLayer; ++slot) {
        TrayAddress addr{roller, layer, slot};
        EXPECT_EQ(TrayAddress::FromIndex(addr.ToIndex()), addr);
      }
    }
  }
}

TEST(TrayAddress, IndexIsDense) {
  EXPECT_EQ((TrayAddress{0, 0, 0}.ToIndex()), 0);
  EXPECT_EQ((TrayAddress{0, 0, 1}.ToIndex()), 1);
  EXPECT_EQ((TrayAddress{0, 1, 0}.ToIndex()), kSlotsPerLayer);
  EXPECT_EQ((TrayAddress{1, 0, 0}.ToIndex()), kTraysPerRoller);
  EXPECT_EQ((TrayAddress{1, 84, 5}.ToIndex()), 2 * kTraysPerRoller - 1);
}

TEST(TrayAddress, Validity) {
  EXPECT_TRUE((TrayAddress{0, 0, 0}.IsValid()));
  EXPECT_TRUE((TrayAddress{1, 84, 5}.IsValid()));
  EXPECT_FALSE((TrayAddress{2, 0, 0}.IsValid()));
  EXPECT_FALSE((TrayAddress{0, 85, 0}.IsValid()));
  EXPECT_FALSE((TrayAddress{0, 0, 6}.IsValid()));
  EXPECT_FALSE((TrayAddress{-1, 0, 0}.IsValid()));
  EXPECT_FALSE((TrayAddress{1, 0, 0}.IsValid(/*rollers=*/1)));
}

TEST(DiscAddress, IndexRoundTrip) {
  for (int tray_index = 0; tray_index < 2 * kTraysPerRoller;
       tray_index += 13) {
    for (int disc = 0; disc < kDiscsPerTray; ++disc) {
      DiscAddress addr{TrayAddress::FromIndex(tray_index), disc};
      EXPECT_EQ(DiscAddress::FromIndex(addr.ToIndex()), addr);
    }
  }
}

TEST(DiscAddress, FullRackEnumeration) {
  // Every index in [0, 12240) maps to a unique valid address and back.
  for (int i = 0; i < kMaxDiscsPerRack; i += 101) {
    DiscAddress addr = DiscAddress::FromIndex(i);
    EXPECT_TRUE(addr.IsValid());
    EXPECT_EQ(addr.ToIndex(), i);
  }
  EXPECT_FALSE(DiscAddress::FromIndex(kMaxDiscsPerRack).IsValid());
}

TEST(SlotDistance, ShortestAngularPath) {
  EXPECT_EQ(SlotDistance(0, 0), 0);
  EXPECT_EQ(SlotDistance(0, 1), 1);
  EXPECT_EQ(SlotDistance(0, 3), 3);  // half turn, worst case
  EXPECT_EQ(SlotDistance(0, 4), 2);  // shorter to rotate backwards
  EXPECT_EQ(SlotDistance(0, 5), 1);
  EXPECT_EQ(SlotDistance(5, 0), 1);
  EXPECT_EQ(SlotDistance(2, 5), 3);
}

TEST(Addresses, StringFormsAreReadable) {
  EXPECT_EQ((TrayAddress{1, 84, 5}.ToString()), "r1/L84/s5");
  EXPECT_EQ((DiscAddress{{0, 2, 3}, 11}.ToString()), "r0/L2/s3/d11");
}

}  // namespace
}  // namespace ros::mech
