#include "src/drive/disc.h"

#include <gtest/gtest.h>

#include <vector>

namespace ros::drive {
namespace {

std::vector<std::uint8_t> Payload(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(Disc, CapacitiesMatchMediaTypes) {
  EXPECT_EQ(DiscCapacity(DiscType::kBdr25), 25ull * kGB);
  EXPECT_EQ(DiscCapacity(DiscType::kBdr100), 100ull * kGB);
  EXPECT_TRUE(IsWorm(DiscType::kBdr25));
  EXPECT_TRUE(IsWorm(DiscType::kBdr100));
  EXPECT_FALSE(IsWorm(DiscType::kBdre25));
}

TEST(Disc, AppendSessionTracksCapacity) {
  Disc disc("d1", DiscType::kBdr25);
  EXPECT_TRUE(disc.blank());
  ASSERT_TRUE(disc.AppendSession("img-1", 10 * kGB, Payload(100, 1), true).ok());
  EXPECT_FALSE(disc.blank());
  EXPECT_EQ(disc.burned_bytes(), 10 * kGB);
  EXPECT_EQ(disc.free_bytes(), 15 * kGB);
  ASSERT_TRUE(disc.AppendSession("img-2", 15 * kGB, Payload(100, 2), true).ok());
  EXPECT_EQ(disc.free_bytes(), 0u);
}

TEST(Disc, AppendBeyondCapacityFails) {
  Disc disc("d1", DiscType::kBdr25);
  EXPECT_EQ(disc.AppendSession("img", 26 * kGB, {}, true).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(disc.AppendSession("a", 20 * kGB, {}, true).ok());
  EXPECT_EQ(disc.AppendSession("b", 6 * kGB, {}, true).code(),
            StatusCode::kResourceExhausted);
}

TEST(Disc, PayloadLargerThanLogicalSizeRejected) {
  Disc disc("d1", DiscType::kBdr25);
  EXPECT_EQ(disc.AppendSession("img", 10, Payload(11, 0), true).code(),
            StatusCode::kInvalidArgument);
}

TEST(Disc, OpenSessionBlocksNewAppends) {
  Disc disc("d1", DiscType::kBdr25);
  ASSERT_TRUE(disc.AppendSession("img-1", kGB, {}, /*closed=*/false).ok());
  EXPECT_EQ(disc.AppendSession("img-2", kGB, {}, true).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Disc, ExtendOpenSessionGrowsAccounting) {
  Disc disc("d1", DiscType::kBdr25);
  ASSERT_TRUE(disc.AppendSession("img", kGB, Payload(10, 1), false).ok());
  EXPECT_EQ(disc.burned_bytes(), kGB);
  ASSERT_TRUE(disc.ExtendOpenSession("img", 3 * kGB, Payload(20, 2), true).ok());
  EXPECT_EQ(disc.burned_bytes(), 3 * kGB);
  EXPECT_TRUE(disc.sessions().back().closed);
  // Closed now: further extension is WORM-illegal.
  EXPECT_EQ(disc.ExtendOpenSession("img", 4 * kGB, {}, true).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Disc, ExtendRejectsWrongImageAndShrink) {
  Disc disc("d1", DiscType::kBdr25);
  ASSERT_TRUE(disc.AppendSession("img", kGB, {}, false).ok());
  EXPECT_EQ(disc.ExtendOpenSession("other", 2 * kGB, {}, true).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(disc.ExtendOpenSession("img", kGB / 2, {}, true).code(),
            StatusCode::kInvalidArgument);
}

TEST(Disc, ReadSessionRoundTrip) {
  Disc disc("d1", DiscType::kBdr25);
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(disc.AppendSession("img", kGB, data, true).ok());
  auto read = disc.ReadSession("img", 2, 4);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<std::uint8_t>{3, 4, 5, 6}));
}

TEST(Disc, SparseTailReadsAsZeros) {
  Disc disc("d1", DiscType::kBdr25);
  ASSERT_TRUE(disc.AppendSession("img", kGB, Payload(4, 9), true).ok());
  auto read = disc.ReadSession("img", 2, 6);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<std::uint8_t>{9, 9, 0, 0, 0, 0}));
}

TEST(Disc, ReadBeyondSessionFails) {
  Disc disc("d1", DiscType::kBdr25);
  ASSERT_TRUE(disc.AppendSession("img", 100, {}, true).ok());
  EXPECT_EQ(disc.ReadSession("img", 50, 51).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(disc.ReadSession("missing", 0, 1).status().code(),
            StatusCode::kNotFound);
}

TEST(Disc, CorruptedSectorFailsReadsCoveringIt) {
  Disc disc("d1", DiscType::kBdr25);
  ASSERT_TRUE(disc.AppendSession("img", kGB, Payload(100, 7), true).ok());
  disc.CorruptSector(1);  // bytes [2048, 4096)
  EXPECT_TRUE(disc.ReadSession("img", 0, 100).ok());
  EXPECT_EQ(disc.ReadSession("img", 2048, 10).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(disc.ReadSession("img", 0, 3000).status().code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(disc.ReadSession("img", 4096, 100).ok());
}

TEST(Disc, ScrubFindsOnlyBurnedCorruption) {
  Disc disc("d1", DiscType::kBdr25);
  ASSERT_TRUE(disc.AppendSession("img", 10 * kSectorSize, {}, true).ok());
  disc.CorruptSector(3);
  disc.CorruptSector(999999);  // beyond burned area: latent, not reported
  auto bad = disc.ScrubForErrors();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 3u);
}

TEST(Disc, WormCannotErase) {
  Disc disc("d1", DiscType::kBdr25);
  EXPECT_EQ(disc.Erase().code(), StatusCode::kFailedPrecondition);
}

TEST(Disc, RewritableEraseCycleLimit) {
  Disc disc("d1", DiscType::kBdre25);
  ASSERT_TRUE(disc.AppendSession("img", kGB, {}, true).ok());
  ASSERT_TRUE(disc.Erase().ok());
  EXPECT_TRUE(disc.blank());
  EXPECT_EQ(disc.erase_cycles_used(), 1);
  for (int i = 1; i < kMaxEraseCycles; ++i) {
    ASSERT_TRUE(disc.Erase().ok());
  }
  EXPECT_EQ(disc.Erase().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ros::drive
