// Inline analytics scenario (§1, §2.3): a big-data job scans historical
// records directly through the POSIX namespace — no restore step, no
// backup-system intervention. Demonstrates the cache/fetch behaviour that
// makes "inline accessibility" work: warm reads from the disk buffer,
// cold reads via mechanical fetches, locality on parked arrays, and the
// forepart mechanism answering first bytes in ~2 ms.
#include <cstdio>
#include <memory>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"
#include "src/workload/filebench.h"

using namespace ros;
using namespace ros::olfs;

int main() {
  sim::Simulator sim;
  SystemConfig hw = TestSystemConfig();
  hw.drive_sets = 1;
  RosSystem rack(sim, hw);

  OlfsParams params;
  params.disc_capacity_override = 32 * kMiB;
  params.read_cache_bytes = 64 * kMiB;  // small cache: some data goes cold
  params.forepart_enabled = true;
  params.forepart_bytes = 16 * kKiB;
  Olfs olfs(sim, &rack, params);
  olfs.burns().burn_start_interval = sim::Seconds(2);

  // Preserve two years of monthly records, then age them out to discs.
  std::printf("[ingest] preserving 24 monthly record batches...\n");
  Rng rng(11);
  for (int month = 0; month < 24; ++month) {
    char path[64];
    std::snprintf(path, sizeof(path), "/records/y%d/m%02d.dat",
                  2015 + month / 12, month % 12 + 1);
    ROS_CHECK(sim.RunUntilComplete(
                  olfs.Create(path, std::vector<std::uint8_t>(1024, 0x30),
                              6 * kMiB))
                  .ok());
  }
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  std::printf("  burned %d arrays; cache holds %.1f MiB\n",
              olfs.burns().arrays_burned(),
              static_cast<double>(olfs.cache().used_bytes()) / kMiB);

  // The analytics job: scan all 24 batches through the global namespace.
  std::printf("\n[scan] full-history scan (inline, no restore step):\n");
  auto dirs = sim.RunUntilComplete(olfs.ReadDir("/records"));
  ROS_CHECK(dirs.ok());
  double total_seconds = 0;
  int cold = 0;
  for (const std::string& year : *dirs) {
    auto months = sim.RunUntilComplete(olfs.ReadDir("/records/" + year));
    ROS_CHECK(months.ok());
    for (const std::string& month : *months) {
      const std::string path = "/records/" + year + "/" + month;
      sim::TimePoint t0 = sim.now();
      auto data = sim.RunUntilComplete(olfs.Read(path, 0, 64 * kKiB));
      ROS_CHECK(data.ok());
      const double seconds = sim::ToSeconds(sim.now() - t0);
      total_seconds += seconds;
      const bool was_cold = seconds > 1.0;
      cold += was_cold;
      if (was_cold) {
        std::printf("  %-28s %8.2f s  (mechanical fetch)\n", path.c_str(),
                    seconds);
      }
    }
  }
  std::printf("  scanned 24 batches in %.1f s total; %d cold fetches, "
              "%llu cache hits\n", total_seconds, cold,
              static_cast<unsigned long long>(olfs.cache().hits()));

  // Forepart: a dashboard needs the header of an arbitrary cold file NOW.
  std::printf("\n[forepart] first bytes of a cold batch (§4.8):\n");
  sim::TimePoint t0 = sim.now();
  auto fore = sim.RunUntilComplete(
      olfs.ReadForepart("/records/y2015/m03.dat"));
  ROS_CHECK(fore.ok());
  std::printf("  %zu forepart bytes served from MV in %.1f ms "
              "(no mechanical wait)\n", fore->size(),
              sim::ToMillis(sim.now() - t0));

  // Repeat scan: the working set is now parked/cached — inline and fast.
  std::printf("\n[re-scan] same scan again (locality):\n");
  t0 = sim.now();
  for (const std::string& year : *dirs) {
    auto months = sim.RunUntilComplete(olfs.ReadDir("/records/" + year));
    ROS_CHECK(months.ok());
    for (const std::string& month : *months) {
      auto data = sim.RunUntilComplete(
          olfs.Read("/records/" + year + "/" + month, 0, 64 * kKiB));
      ROS_CHECK(data.ok());
    }
  }
  std::printf("  re-scan finished in %.1f s\n",
              sim::ToSeconds(sim.now() - t0));
  return 0;
}
