// Archival datacenter scenario: sustained ingest of a mixed archival
// workload through the Samba front end, with the burn pipeline running
// behind it — the deployment §1 and §2.3 motivate (long-term preservation
// with inline accessibility, no separate backup system).
//
// Prints pipeline statistics: ingest throughput, bucket/image/burn
// progress, disc-array utilization and buffer occupancy.
#include <cstdio>
#include <memory>

#include "src/common/rng.h"
#include "src/frontend/stack.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"
#include "src/workload/filebench.h"

using namespace ros;
using namespace ros::olfs;

int main() {
  sim::Simulator sim;
  SystemConfig hw;
  hw.rollers = 1;
  hw.drive_sets = 2;
  hw.data_volumes = 2;
  hw.hdds_per_volume = 7;
  hw.hdd_capacity = 32 * kGiB;
  hw.ssd_capacity = 1 * kGiB;
  RosSystem rack(sim, hw);

  OlfsParams params;
  params.disc_capacity_override = 256 * kMiB;  // scaled-down media
  Olfs olfs(sim, &rack, params);
  olfs.burns().burn_start_interval = sim::Seconds(5);

  frontend::FrontendStack nas(sim, frontend::StackConfig::kSambaOlfs,
                              nullptr, &olfs);

  // A day's ingest: ~2000 archival objects, log-uniform 256 KiB..32 MiB.
  Rng rng(7);
  auto files = workload::GenerateArchivalFiles(rng, 2000, "/ingest",
                                               256 * kKiB, 32 * kMiB);

  std::printf("archival ingest: %zu objects over Samba+OLFS\n",
              files.size());
  sim::TimePoint t0 = sim.now();
  std::uint64_t ingested = 0;
  std::size_t next_report = 500;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& file = files[i];
    // NAS clients stream each object (sparse payloads stand in for data).
    Status status = sim.RunUntilComplete(
        olfs.Create(file.path, std::vector<std::uint8_t>(256, 0x11),
                    file.size));
    ROS_CHECK(status.ok());
    ingested += file.size;
    if (i + 1 == next_report) {
      const double hours = sim::ToSeconds(sim.now() - t0) / 3600.0;
      std::printf(
          "  %5zu objects, %6.1f GB ingested, %2d arrays burned, "
          "%5.2f h elapsed, buffer %5.1f GB\n",
          i + 1, BytesToGB(ingested), olfs.burns().arrays_burned(), hours,
          BytesToGB(olfs.images().buffered_bytes()));
      next_report += 500;
    }
  }

  std::printf("\nflushing the tail of the pipeline...\n");
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  ROS_CHECK(sim.RunUntilComplete(olfs.BurnMvSnapshot()).ok());
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());

  const double hours = sim::ToSeconds(sim.now() - t0) / 3600.0;
  const int arrays = olfs.burns().arrays_burned();
  std::printf("\n== pipeline summary ==\n");
  std::printf("  ingested:            %.1f GB in %.2f simulated hours "
              "(%.1f MB/s sustained)\n",
              BytesToGB(ingested), hours,
              BytesToMB(ingested) / (hours * 3600.0));
  std::printf("  buckets created:     %d\n",
              olfs.buckets().buckets_created());
  std::printf("  disc arrays burned:  %d (%d discs, incl. parity + MV "
              "snapshot)\n", arrays, arrays * 12);
  std::printf("  DAindex:             %d used / %d empty\n",
              olfs.da_index().CountState(ArrayState::kUsed),
              olfs.da_index().CountState(ArrayState::kEmpty));
  std::printf("  namespace entries:   %llu\n",
              static_cast<unsigned long long>(olfs.mv().index_count()));

  // Inline access check: a random object straight back through the stack.
  const auto& probe = files[files.size() / 2];
  sim::TimePoint r0 = sim.now();
  auto data = sim.RunUntilComplete(olfs.Read(probe.path, 0, 1 * kKiB));
  ROS_CHECK(data.ok());
  std::printf("  inline read-back:    %s in %.3f s\n", probe.path.c_str(),
              sim::ToSeconds(sim.now() - r0));
  return 0;
}
