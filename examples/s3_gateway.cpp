// Object-storage gateway scenario (§4.2's interface extension): an
// S3-style service running directly on the rack — buckets, keys, versioned
// overwrites, prefix listing — with the optical tier underneath. Shows
// that the namespace-mapping design supports interfaces beyond POSIX
// without touching the storage pipeline.
#include <cstdio>
#include <memory>

#include "src/frontend/object_store.h"
#include "src/olfs/maintenance.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

using namespace ros;
using namespace ros::olfs;
using frontend::ObjectStore;

namespace {
std::vector<std::uint8_t> Blob(const std::string& s) {
  return {s.begin(), s.end()};
}
}  // namespace

int main() {
  sim::Simulator sim;
  RosSystem rack(sim, TestSystemConfig());
  OlfsParams params;
  params.disc_capacity_override = 16 * kMiB;
  Olfs olfs(sim, &rack, params);
  olfs.burns().burn_start_interval = sim::Seconds(2);
  ObjectStore s3(&olfs);

  std::printf("[1] creating buckets and uploading objects\n");
  ROS_CHECK(sim.RunUntilComplete(s3.CreateBucket("telemetry")).ok());
  ROS_CHECK(sim.RunUntilComplete(s3.CreateBucket("compliance")).ok());
  const char* keys[] = {"2016/01/device-a.json", "2016/01/device-b.json",
                        "2016/02/device-a.json", "2017/01/device-a.json"};
  for (const char* key : keys) {
    ROS_CHECK(sim.RunUntilComplete(
                  s3.PutObject("telemetry", key,
                               Blob(std::string("reading from ") + key)))
                  .ok());
  }
  ROS_CHECK(sim.RunUntilComplete(
                s3.PutObject("compliance", "policy.pdf", Blob("v1 policy")))
                .ok());

  std::printf("[2] versioned overwrite (WORM-safe)\n");
  ROS_CHECK(sim.RunUntilComplete(
                s3.PutObject("compliance", "policy.pdf", Blob("v2 policy")))
                .ok());
  auto head = sim.RunUntilComplete(s3.HeadObject("compliance", "policy.pdf"));
  ROS_CHECK(head.ok());
  std::printf("  policy.pdf is now version %d (%llu bytes)\n",
              head->version, static_cast<unsigned long long>(head->size));
  auto v1 = sim.RunUntilComplete(
      s3.GetObjectVersion("compliance", "policy.pdf", 1));
  ROS_CHECK(v1.ok());
  std::printf("  version 1 still retrievable: \"%.*s\"\n",
              static_cast<int>(v1->size()),
              reinterpret_cast<const char*>(v1->data()));

  std::printf("[3] prefix listing\n");
  auto jan = sim.RunUntilComplete(s3.ListObjects("telemetry", "2016/"));
  ROS_CHECK(jan.ok());
  for (const auto& object : *jan) {
    std::printf("  telemetry/%s (%llu bytes, v%d)\n", object.key.c_str(),
                static_cast<unsigned long long>(object.size),
                object.version);
  }

  std::printf("[4] objects age onto optical discs; access stays inline\n");
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  sim::TimePoint t0 = sim.now();
  auto cold = sim.RunUntilComplete(
      s3.GetObject("telemetry", "2016/01/device-b.json"));
  ROS_CHECK(cold.ok());
  std::printf("  GET after burn: \"%.*s\" (%.3f s)\n",
              static_cast<int>(cold->size()),
              reinterpret_cast<const char*>(cold->data()),
              sim::ToSeconds(sim.now() - t0));

  std::printf("[5] admin console snapshot (MI module)\n");
  Maintenance mi(&olfs);
  json::Value report = mi.StatusReport();
  std::printf("  arrays used: %lld, namespace entries: %lld, "
              "images: %lld\n",
              static_cast<long long>(report["disc_arrays"]["used"].as_int()),
              static_cast<long long>(report["namespace"]["entries"].as_int()),
              static_cast<long long>(report["namespace"]["images"].as_int()));
  return 0;
}
