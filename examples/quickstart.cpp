// Quickstart: build a small ROS rack, write files through the POSIX-style
// OLFS interface, watch them move through the storage tiers (bucket ->
// disc image -> burned disc), and read them back from every tier.
//
// Everything below runs in simulated time: the printed timestamps are the
// latencies a client of the real rack would observe.
#include <cstdio>
#include <string>
#include <vector>

#include "src/olfs/olfs.h"
#include "src/sim/time.h"

using namespace ros;
using namespace ros::olfs;

namespace {

const char* LocationName(LocationKind kind) {
  switch (kind) {
    case LocationKind::kBucket: return "disk bucket (write buffer)";
    case LocationKind::kImage: return "disc image (disk buffer)";
    case LocationKind::kDisc: return "optical disc";
  }
  return "?";
}

void Show(sim::Simulator& sim, Olfs& olfs, const std::string& path) {
  auto info = sim.RunUntilComplete(olfs.Stat(path));
  ROS_CHECK(info.ok());
  std::printf("  %-24s %8llu bytes  v%d  on %s\n", path.c_str(),
              static_cast<unsigned long long>(info->size), info->version,
              LocationName(info->location));
}

}  // namespace

int main() {
  // 1. Assemble the rack: rollers + robotic arm + PLC, drive sets, SSD
  //    metadata RAID-1, HDD RAID-5 buffers — then OLFS on top.
  sim::Simulator sim;
  SystemConfig hw = TestSystemConfig();
  RosSystem rack(sim, hw);

  OlfsParams params;
  params.disc_capacity_override = 16 * kMiB;  // small media for the demo
  params.read_cache_bytes = 0;                // force the cold-read path
  Olfs olfs(sim, &rack, params);
  olfs.burns().burn_start_interval = sim::Seconds(2);

  std::printf("ROS quickstart: %d roller(s), %d drive set(s), "
              "%d data volume(s)\n",
              hw.rollers, hw.drive_sets, hw.data_volumes);

  // 2. Write a few files. Writes land in an updatable UDF bucket on the
  //    disk buffer and are acknowledged immediately (§4.3).
  std::printf("\n[1] writing files (acknowledged from the disk buffer):\n");
  std::vector<std::uint8_t> report(64 * kKiB, 0x52);
  ROS_CHECK(sim.RunUntilComplete(
                olfs.Create("/archive/report.pdf", report)).ok());
  ROS_CHECK(sim.RunUntilComplete(
                olfs.Create("/archive/trace.bin",
                            std::vector<std::uint8_t>(128 * kKiB, 0x7)))
                .ok());
  Show(sim, olfs, "/archive/report.pdf");
  Show(sim, olfs, "/archive/trace.bin");

  // 3. Updates create versions; WORM media never loses the old ones.
  std::printf("\n[2] regenerating update (§4.6):\n");
  ROS_CHECK(sim.RunUntilComplete(
                olfs.Update("/archive/report.pdf",
                            std::vector<std::uint8_t>(32 * kKiB, 0x53),
                            32 * kKiB))
                .ok());
  Show(sim, olfs, "/archive/report.pdf");

  // 4. Flush: buckets close into disc images, parity is generated, the
  //    array burns onto discs, the robotic arm returns it to the roller.
  std::printf("\n[3] flushing the pipeline (parity + burn + unload)...\n");
  sim::TimePoint t0 = sim.now();
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  std::printf("  pipeline drained in %.1f simulated seconds; "
              "%d disc array(s) burned\n",
              sim::ToSeconds(sim.now() - t0), olfs.burns().arrays_burned());
  Show(sim, olfs, "/archive/report.pdf");

  // 5. Cold read: the only copy is on a disc in the roller. OLFS fetches
  //    the array mechanically (~70 s) and serves the bytes.
  std::printf("\n[4] cold read from the roller:\n");
  t0 = sim.now();
  auto data = sim.RunUntilComplete(olfs.Read("/archive/report.pdf", 0,
                                             32 * kKiB));
  ROS_CHECK(data.ok());
  std::printf("  read %zu bytes in %.1f s (mechanical fetch + drive wake "
              "+ VFS mount)\n", data->size(),
              sim::ToSeconds(sim.now() - t0));

  // 6. Warm read: the disc array is still parked in the drives.
  t0 = sim.now();
  data = sim.RunUntilComplete(olfs.Read("/archive/trace.bin", 0, 4 * kKiB));
  ROS_CHECK(data.ok());
  std::printf("  next read from the same array: %.3f s\n",
              sim::ToSeconds(sim.now() - t0));

  // 7. History is still accessible (data provenance, §4.6).
  auto v1 = sim.RunUntilComplete(
      olfs.ReadVersion("/archive/report.pdf", 1, 0, 16));
  ROS_CHECK(v1.ok());
  std::printf("\n[5] version 1 still readable: first byte 0x%02X "
              "(v2 would be 0x53)\n", (*v1)[0]);

  std::printf("\ndone: %llu fetches, cache hits %llu / misses %llu\n",
              static_cast<unsigned long long>(olfs.fetches().fetches()),
              static_cast<unsigned long long>(olfs.cache().hits()),
              static_cast<unsigned long long>(olfs.cache().misses()));
  return 0;
}
