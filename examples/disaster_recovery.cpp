// Disaster recovery scenario (§2.3, §4.4, §4.7): the properties that make
// ROS trustworthy for 50-year preservation.
//
//   1. A burned disc develops sector errors -> the scrub detects it and
//      rebuilds the image from its array's parity disc, re-burning it.
//   2. The controller (and with it the Metadata Volume) is destroyed ->
//      a replacement controller rebuilds the entire global namespace by
//      physically scanning the survived discs, because every disc image
//      is self-descriptive (unique file path, §4.4).
#include <cstdio>
#include <memory>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

using namespace ros;
using namespace ros::olfs;

namespace {

std::vector<std::uint8_t> Fingerprinted(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

}  // namespace

int main() {
  sim::Simulator sim;
  RosSystem rack(sim, TestSystemConfig());

  OlfsParams params;
  params.disc_capacity_override = 16 * kMiB;
  params.read_cache_bytes = 0;
  auto olfs = std::make_unique<Olfs>(sim, &rack, params);
  olfs->burns().burn_start_interval = sim::Seconds(2);

  // Preserve a few precious datasets and push them all the way to discs.
  std::printf("[setup] preserving datasets to optical discs...\n");
  auto genome = Fingerprinted(96 * kKiB, 1);
  auto ledger = Fingerprinted(48 * kKiB, 2);
  ROS_CHECK(sim.RunUntilComplete(
                olfs->Create("/vault/genome.fa", genome)).ok());
  ROS_CHECK(sim.RunUntilComplete(
                olfs->Create("/vault/ledger.db", ledger)).ok());
  ROS_CHECK(sim.RunUntilComplete(olfs->FlushAndDrain()).ok());
  std::printf("  %zu images burned across %d disc array(s)\n",
              olfs->images().BurnedImages().size(),
              olfs->burns().arrays_burned());

  // --- disaster 1: media degradation -------------------------------
  std::printf("\n[disaster 1] sector rot on the disc holding "
              "/vault/genome.fa\n");
  auto index = sim.RunUntilComplete(olfs->mv().Get("/vault/genome.fa"));
  ROS_CHECK(index.ok());
  const std::string image_id = (*index->Latest())->parts[0].image_id;
  auto record = olfs->images().Lookup(image_id);
  ROS_CHECK(record.ok());
  const mech::TrayAddress home = (*record)->disc->tray;
  olfs->mech().DiscAt(*(*record)->disc)->CorruptSector(3);

  auto broken = sim.RunUntilComplete(olfs->Read("/vault/genome.fa", 0, 64));
  std::printf("  direct read: %s\n", broken.status().ToString().c_str());

  sim::TimePoint t0 = sim.now();
  auto repaired = sim.RunUntilComplete(olfs->ScrubAndRepair());
  ROS_CHECK(repaired.ok());
  ROS_CHECK(sim.RunUntilComplete(olfs->FlushAndDrain()).ok());
  auto healed = sim.RunUntilComplete(
      olfs->Read("/vault/genome.fa", 0, genome.size()));
  ROS_CHECK(healed.ok());
  std::printf("  scrub repaired %d image(s) from parity in %.0f s; "
              "data %s\n", *repaired, sim::ToSeconds(sim.now() - t0),
              *healed == genome ? "bit-exact" : "CORRUPT");

  // --- disaster 2: total controller + MV loss ----------------------
  std::printf("\n[disaster 2] controller destroyed; replacement boots "
              "with an empty MV\n");
  std::vector<mech::TrayAddress> used_trays;
  for (int t = 0; t < mech::kTraysPerRoller; ++t) {
    mech::TrayAddress tray = mech::TrayAddress::FromIndex(t);
    if (olfs->da_index().state(tray) == ArrayState::kUsed) {
      used_trays.push_back(tray);
    }
  }
  (void)home;
  olfs = std::make_unique<Olfs>(sim, &rack, params);  // new controller
  olfs->burns().burn_start_interval = sim::Seconds(2);

  auto missing = sim.RunUntilComplete(olfs->Read("/vault/ledger.db", 0, 16));
  std::printf("  before recovery: %s\n",
              missing.status().ToString().c_str());

  t0 = sim.now();
  auto report = sim.RunUntilComplete(olfs->RebuildNamespace(used_trays));
  if (!report.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 report.status().ToString().c_str());
  }
  ROS_CHECK(report.ok());
  std::printf("  scanned %d discs, parsed %d images, recovered %d files "
              "in %.0f s\n", report->discs_scanned, report->images_parsed,
              report->files_recovered, sim::ToSeconds(sim.now() - t0));

  auto restored = sim.RunUntilComplete(
      olfs->Read("/vault/ledger.db", 0, ledger.size()));
  ROS_CHECK(restored.ok());
  std::printf("  /vault/ledger.db: %s\n",
              *restored == ledger ? "bit-exact after recovery"
                                  : "CORRUPT");
  auto restored_genome = sim.RunUntilComplete(
      olfs->Read("/vault/genome.fa", 0, genome.size()));
  ROS_CHECK(restored_genome.ok());
  std::printf("  /vault/genome.fa: %s\n",
              *restored_genome == genome ? "bit-exact after recovery"
                                         : "CORRUPT");
  return 0;
}
