// Reproduces Table 3 (§5.5): disc-array load/unload latencies at the
// uppermost and lowest roller layers.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/mech/library.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

using namespace ros;

namespace {

double Timed(sim::Simulator& sim, sim::Task<Status> op) {
  sim::TimePoint start = sim.now();
  Status status = sim.RunUntilComplete(std::move(op));
  ROS_CHECK(status.ok());
  return sim::ToSeconds(sim.now() - start);
}

double LoadAt(int layer) {
  sim::Simulator sim;
  mech::Library lib(sim, mech::LibraryConfig{});
  return Timed(sim, lib.LoadArray({0, layer, 1}, 0));
}

double UnloadAt(int layer) {
  sim::Simulator sim;
  mech::Library lib(sim, mech::LibraryConfig{});
  ROS_CHECK(sim.RunUntilComplete(lib.LoadArray({0, layer, 1}, 0)).ok());
  return Timed(sim, lib.UnloadArray(0));
}

}  // namespace

int main() {
  bench::PrintHeader("Table 3: mechanical latency (seconds)");
  bench::PrintRow("load, uppermost layer", 68.7, LoadAt(0), "s");
  bench::PrintRow("load, lowest layer", 73.2, LoadAt(84), "s");
  bench::PrintRow("unload, uppermost layer", 81.7, UnloadAt(0), "s");
  bench::PrintRow("unload, lowest layer", 86.5, UnloadAt(84), "s");

  // Component breakdown the paper quotes in prose.
  sim::Simulator sim;
  mech::MechTimingModel timing;
  bench::PrintHeader("Mechanical component breakdown (paper prose, §5.5)");
  bench::PrintRow("roller rotation, worst case (3 slots)", 2.0,
                  sim::ToSeconds(timing.RotateTime(0, 3)), "s");
  bench::PrintRow("arm travel top<->bottom (empty)", 4.5,
                  sim::ToSeconds(timing.ArmTravelTime(0, 84, false)), "s");
  bench::PrintRow("separate 12 discs into drives", 61.0,
                  sim::ToSeconds(timing.SeparateArrayTime()), "s");
  bench::PrintRow("collect 12 discs from drives", 74.0,
                  sim::ToSeconds(timing.CollectArrayTime()), "s");
  return 0;
}
