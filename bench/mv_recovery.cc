// Reproduces §4.2's recovery experiment: "ROS took half an hour to recover
// MV from 120 discs" — a physical scan of 10 disc arrays (120 discs)
// rebuilding the global namespace, plus the MV sizing arithmetic (1 B
// files + 1 B directories ~= 2.3 TB, 0.23% of 1 PB).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/disk/block_device.h"
#include "src/disk/volume.h"
#include "src/olfs/metadata_volume.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"
#include "src/workload/filebench.h"

using namespace ros;
using namespace ros::olfs;

namespace {

// Populates a standalone log-structured MV for the inline replay section.
sim::Task<Status> PopulateMv(MetadataVolume* mv, int entries) {
  for (int i = 0; i < entries; ++i) {
    IndexFile index("/archive/d" + std::to_string(i % 64) + "/f" +
                        std::to_string(i),
                    EntryType::kFile);
    VersionEntry entry;
    entry.total_size = 4096;
    entry.parts.push_back({"img-000001", 4096});
    index.AddVersion(std::move(entry), 15);
    Status status = co_await mv->Put(std::move(index));
    if (!status.ok()) {
      co_return status;
    }
  }
  co_return OkStatus();
}

}  // namespace

int main() {
  sim::Simulator sim;
  SystemConfig config;
  config.rollers = 1;
  config.drive_sets = 2;
  config.data_volumes = 2;
  config.hdds_per_volume = 7;
  config.hdd_capacity = 32 * kGiB;
  config.ssd_capacity = 1 * kGiB;
  RosSystem system(sim, config);

  OlfsParams params;
  params.disc_capacity_override = 256 * kMiB;
  params.internal_op_cost = 0;  // background recovery, not the PI path
  params.mode_switch_cost = 0;
  auto olfs = std::make_unique<Olfs>(sim, &system, params);
  olfs->burns().burn_start_interval = sim::Seconds(2);

  // Fill 10 disc arrays (120 discs): 110 data images + 10 parity images.
  // Sparse archival files keep the real bytes small.
  Rng rng(2026);
  auto files = workload::GenerateArchivalFiles(rng, 6000, "/archive",
                                               512 * kKiB, 24 * kMiB);
  std::uint64_t ingested = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& file = files[i];
    Status status = sim.RunUntilComplete(olfs->Create(
        file.path, std::vector<std::uint8_t>(512, 0x42), file.size));
    ROS_CHECK(status.ok());
    ingested += file.size;
    if (olfs->burns().arrays_burned() >= 10) {
      break;
    }
  }
  ROS_CHECK(sim.RunUntilComplete(olfs->burns().DrainAll()).ok());
  const int arrays = olfs->burns().arrays_burned();
  std::printf("ingested %.1f GB; %d disc arrays burned (%d discs)\n",
              BytesToGB(ingested), arrays, arrays * 12);

  // Collect the burned trays, then destroy the controller.
  std::vector<mech::TrayAddress> trays;
  for (int t = 0; t < mech::kTraysPerRoller; ++t) {
    mech::TrayAddress tray = mech::TrayAddress::FromIndex(t);
    if (olfs->da_index().state(tray) == ArrayState::kUsed) {
      trays.push_back(tray);
    }
  }
  const std::uint64_t paths_before = olfs->mv().index_count();

  olfs = std::make_unique<Olfs>(sim, &system, params);  // fresh controller
  sim::TimePoint t0 = sim.now();
  auto report = sim.RunUntilComplete(olfs->RebuildNamespace(trays));
  ROS_CHECK(report.ok());
  const double minutes = sim::ToSeconds(sim.now() - t0) / 60.0;

  bench::PrintHeader("MV recovery by scanning discs (§4.2)");
  std::printf("  discs scanned: %d, images parsed: %d, files recovered: %d, "
              "unreadable: %d\n",
              report->discs_scanned, report->images_parsed,
              report->files_recovered, report->unreadable_discs);
  std::printf("  namespace entries: %llu before, %llu after\n",
              static_cast<unsigned long long>(paths_before),
              static_cast<unsigned long long>(olfs->mv().index_count()));
  bench::PrintRow("recovery time from ~120 discs", 30.0, minutes, "min");
  bench::PrintNote(
      "the scan is dominated by mechanical loads plus per-disc wake/mount "
      "and metadata reads, as in the prototype");

  // Inline MV crash replay (DESIGN.md §5i): before any disc scan, a
  // restarted controller first re-opens the log-structured store over the
  // surviving SSD volume — segments in file-name order, then the WAL
  // tail. That replay is what makes MV loss *without* media loss cheap:
  // the half-hour disc scan above is only for the total-loss case.
  {
    disk::StorageDevice mv_dev(sim, "mv-ssd", 512 * kMiB, disk::SsdPerf());
    disk::Volume mv_vol(sim, &mv_dev, disk::MetadataVolumeParams());
    MetadataVolume::Options options;
    options.log_structured = true;
    auto mv = std::make_unique<MetadataVolume>(sim, &mv_vol, options);
    constexpr int kEntries = 100000;
    ROS_CHECK(sim.RunUntilComplete(PopulateMv(mv.get(), kEntries)).ok());
    sim.RunFor(sim::Seconds(5));  // let background flushes settle

    mv.reset();  // crash: a fresh store object re-opens the same volume
    mv = std::make_unique<MetadataVolume>(sim, &mv_vol, options);
    const sim::TimePoint r0 = sim.now();
    ROS_CHECK(sim.RunUntilComplete(mv->Open()).ok());
    const double replay_s = sim::ToSeconds(sim.now() - r0);
    ROS_CHECK(mv->index_count() == kEntries);
    const auto stats = mv->store_stats();

    bench::PrintHeader("MV crash replay (log-structured store, §5i)");
    std::printf("  entries: %d, segments replayed: %llu, WAL records "
                "replayed: %llu\n",
                kEntries,
                static_cast<unsigned long long>(stats.recovered_segments),
                static_cast<unsigned long long>(stats.replayed_wal_records));
    std::printf("  replay: %.3f sim-seconds (%.1fk entries/s)\n", replay_s,
                kEntries / replay_s / 1000.0);
    bench::PrintNote(
        "replay is sequential segment reads plus a WAL-tail scan — linear "
        "in surviving bytes, no per-entry inode walk");
  }

  // MV sizing (§4.2 arithmetic).
  bench::PrintHeader("MV sizing (§4.2)");
  const double index_bytes = 388;  // typical index file
  const double billion = 1e9;
  const double mv_tb =
      (2 * billion) * std::max(index_bytes, 1024.0) / 1e12;  // 1 KiB blocks
  bench::PrintRow("MV for 1B files + 1B dirs", 2.3, mv_tb, "TB");
  bench::PrintRow("fraction of 1 PB payload", 0.23, mv_tb / 1000 * 100,
                  "%");
  return 0;
}
