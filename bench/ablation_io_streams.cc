// Ablation for §4.7: the four concurrent I/O streams (user writes, parity
// reads, parity writes, burn staging reads) interfere on a single RAID
// volume; scheduling them across two independent RAID volumes avoids the
// degradation. Measures the end-to-end time of a parity-generation cycle
// running concurrently with foreground user writes.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/frontend/stack.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"
#include "src/workload/filebench.h"

using namespace ros;
using namespace ros::olfs;

namespace {

// Runs an ingest that triggers a full array burn (parity generation +
// staging reads) while a foreground stream keeps writing. Returns the
// foreground stream's achieved throughput in MB/s.
double Run(int data_volumes) {
  sim::Simulator sim;
  SystemConfig config;
  config.rollers = 1;
  config.drive_sets = 1;
  config.data_volumes = data_volumes;
  config.hdds_per_volume = 7;
  config.hdd_capacity = 32 * kGiB;
  RosSystem system(sim, config);
  OlfsParams params;
  params.disc_capacity_override = 512 * kMiB;
  params.stream_op_cost = 0;  // isolate the storage interference
  Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = sim::Seconds(1);

  // Fill 11 buckets so a burn (parity + staging) kicks off in background.
  for (int i = 0; i < 11; ++i) {
    ROS_CHECK(sim.RunUntilComplete(
                  olfs.Create("/bulk/f" + std::to_string(i),
                              std::vector<std::uint8_t>(4096, 1),
                              500 * kMiB))
                  .ok());
  }

  // Foreground stream while the burn pipeline (parity read/write + disc
  // staging reads) is hammering the disk tier.
  frontend::FrontendStack stack(sim, frontend::StackConfig::kExt4Olfs,
                                nullptr, &olfs);
  auto result = sim.RunUntilComplete(workload::SinglestreamWrite(
      sim, stack, "/fg/stream", 2 * kGB));
  if (!result.ok()) {
    std::fprintf(stderr, "foreground stream failed: %s\n",
                 result.status().ToString().c_str());
  }
  ROS_CHECK(result.ok());
  ROS_CHECK(sim.RunUntilComplete(olfs.burns().DrainAll()).ok());
  return result->bytes_per_sec() / 1e6;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation (§4.7): I/O stream interference, 1 vs 2 RAID volumes");
  const double one = Run(1);
  const double two = Run(2);
  std::printf("  foreground write during burn cycle, 1 volume:  %7.1f MB/s\n",
              one);
  std::printf("  foreground write during burn cycle, 2 volumes: %7.1f MB/s\n",
              two);
  std::printf("  improvement from independent volumes:          %7.2fx\n",
              two / one);
  bench::PrintNote(
      "the paper prescribes multiple independent RAIDs so user writes, "
      "parity generation and burn staging do not collide");
  return 0;
}
