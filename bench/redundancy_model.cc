// Reproduces §4.7's redundancy analysis and exercises the scrub/repair
// path: with a 1e-16 sector error rate, an 11+1 RAID-5 disc array reaches
// ~1e-23 and a 10+2 RAID-6 array ~1e-40 whole-array error rates; damaged
// discs are recovered from parity and re-burned.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/drive/disc.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

using namespace ros;
using namespace ros::olfs;

namespace {

// Probability that a disc array is unrecoverable: a sector stripe is lost
// when more than `tolerated` of its n discs have an error in the aligned
// sector (C(n, t+1) * p^(t+1)), summed over every stripe of the disc.
double ArrayErrorRate(double p, int n, int tolerated,
                      double sectors_per_disc) {
  const int k = tolerated + 1;
  double c = 1;
  for (int i = 0; i < k; ++i) {
    c = c * (n - i) / (i + 1);
  }
  return sectors_per_disc * c * std::pow(p, k);
}

}  // namespace

int main() {
  bench::PrintHeader("Redundancy analysis (§4.7)");
  const double sector_error = 1e-16;
  const double sectors = static_cast<double>(100 * kGB / drive::kSectorSize);
  const double raid5 = ArrayErrorRate(sector_error, 12, 1, sectors);
  const double raid6 = ArrayErrorRate(sector_error, 12, 2, sectors);
  std::printf("  sector error rate:              1e-16 (archive BD)\n");
  std::printf("  11+1 RAID-5 array error rate:   paper ~1e-23, model %.1e\n",
              raid5);
  std::printf("  10+2 RAID-6 array error rate:   paper ~1e-40, model %.1e\n",
              raid6);

  // End-to-end scrub & repair on a small rig (RAID-5 schema).
  sim::Simulator sim;
  RosSystem system(sim, TestSystemConfig());
  OlfsParams params;
  params.disc_capacity_override = 16 * kMiB;
  params.read_cache_bytes = 0;
  params.internal_op_cost = 0;
  params.mode_switch_cost = 0;
  Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = sim::Seconds(1);

  ROS_CHECK(sim.RunUntilComplete(
                olfs.Create("/vault/a", std::vector<std::uint8_t>(9000, 0xAA),
                            9000))
                .ok());
  ROS_CHECK(sim.RunUntilComplete(
                olfs.Create("/vault/b", std::vector<std::uint8_t>(7000, 0xBB),
                            7000))
                .ok());
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());

  auto index = sim.RunUntilComplete(olfs.mv().Get("/vault/a"));
  ROS_CHECK(index.ok());
  const std::string image = (*index->Latest())->parts[0].image_id;
  auto record = olfs.images().Lookup(image);
  ROS_CHECK(record.ok());
  olfs.mech().DiscAt(*(*record)->disc)->CorruptSector(2);

  sim::TimePoint t0 = sim.now();
  auto repaired = sim.RunUntilComplete(olfs.ScrubAndRepair());
  ROS_CHECK(repaired.ok());
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  const double repair_seconds = sim::ToSeconds(sim.now() - t0);

  auto data = sim.RunUntilComplete(olfs.Read("/vault/a", 0, 9000));
  ROS_CHECK(data.ok());
  bool intact = true;
  for (std::uint8_t b : *data) {
    intact &= (b == 0xAA);
  }

  bench::PrintHeader("Scrub & parity repair (end to end)");
  std::printf("  corrupted discs repaired:  %d\n", *repaired);
  std::printf("  repair cycle time:         %.1f s (fetch members, XOR, "
              "re-burn)\n", repair_seconds);
  std::printf("  recovered data intact:     %s\n", intact ? "yes" : "NO");
  bench::PrintNote(
      "delayed parity + scheduled scrubbing replaces the write-and-check "
      "mode that would halve burn throughput (§4.7)");
  return 0;
}
