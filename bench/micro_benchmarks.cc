// google-benchmark microbenchmarks of the library's CPU-bound kernels:
// GF(256) parity math, CRC32, JSON index files and UDF serialization.
// These bound the real (host) cost of the parity generation and recovery
// paths; all other benches measure simulated time instead.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/gf256.h"
#include "src/common/hash.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/olfs/index_file.h"
#include "src/udf/image.h"
#include "src/udf/serializer.h"

namespace {

using namespace ros;

std::vector<std::uint8_t> RandomBuffer(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

void BM_XorParity(benchmark::State& state) {
  auto a = RandomBuffer(static_cast<std::size_t>(state.range(0)), 1);
  auto acc = RandomBuffer(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    gf256::XorAcc(acc, a);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XorParity)->Arg(64 << 10)->Arg(1 << 20);

void BM_GfMulAccQParity(benchmark::State& state) {
  auto a = RandomBuffer(static_cast<std::size_t>(state.range(0)), 3);
  auto acc = RandomBuffer(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    gf256::MulAcc(acc, gf256::Pow2(7), a);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GfMulAccQParity)->Arg(64 << 10)->Arg(1 << 20);

void BM_Crc32Scrub(benchmark::State& state) {
  auto data = RandomBuffer(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32Scrub)->Arg(64 << 10)->Arg(1 << 20);

void BM_IndexFileRoundTrip(benchmark::State& state) {
  olfs::IndexFile index("/archive/2016/records/file.dat",
                        olfs::EntryType::kFile);
  for (int v = 0; v < 15; ++v) {
    olfs::VersionEntry entry;
    entry.location = olfs::LocationKind::kDisc;
    entry.total_size = 123456789;
    entry.parts.push_back({"img-001234", 123456789});
    index.AddVersion(std::move(entry), 15);
  }
  const std::string json = index.ToJson();
  for (auto _ : state) {
    auto parsed = olfs::IndexFile::FromJson(json);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(json.size()));
}
BENCHMARK(BM_IndexFileRoundTrip);

void BM_UdfSerializeImage(benchmark::State& state) {
  udf::Image image("bench-img", 25ull * 1000 * 1000 * 1000);
  auto payload = RandomBuffer(4096, 6);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    ROS_CHECK(image.AddFile("/dir" + std::to_string(i % 16) + "/f" +
                                std::to_string(i),
                            payload, 4096)
                  .ok());
  }
  for (auto _ : state) {
    auto bytes = udf::Serializer::Serialize(image);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_UdfSerializeImage)->Arg(100)->Arg(1000);

void BM_UdfParseImage(benchmark::State& state) {
  udf::Image image("bench-img", 25ull * 1000 * 1000 * 1000);
  auto payload = RandomBuffer(4096, 7);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    ROS_CHECK(image.AddFile("/dir" + std::to_string(i % 16) + "/f" +
                                std::to_string(i),
                            payload, 4096)
                  .ok());
  }
  auto bytes = udf::Serializer::Serialize(image);
  for (auto _ : state) {
    auto parsed = udf::Serializer::Parse(bytes);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_UdfParseImage)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
