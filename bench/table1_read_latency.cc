// Reproduces Table 1 (§5.2): file read latency by storage location.
//
// The internal-op (FUSE) overhead is zeroed for this bench — Table 1
// reports the data-path latency of each location, which the paper's §5.3
// numbers (9/16 ms software overhead) sit on top of.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/olfs/olfs.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

using namespace ros;
using namespace ros::olfs;

namespace {

struct Rig {
  Rig() {
    SystemConfig config;
    config.rollers = 1;
    config.drive_sets = 1;
    config.data_volumes = 2;
    config.hdds_per_volume = 7;
    config.hdd_capacity = 8 * kGiB;
    config.ssd_capacity = 512 * kMiB;
    system = std::make_unique<RosSystem>(sim, config);
    OlfsParams params;
    params.disc_capacity_override = 64 * kMiB;
    params.read_cache_bytes = 0;  // evict after burning: reads go to discs
    params.internal_op_cost = 0;  // Table 1 measures the data path
    params.mode_switch_cost = 0;
    params.stream_op_cost = 0;
    olfs = std::make_unique<Olfs>(sim, system.get(), params);
    olfs->burns().burn_start_interval = sim::Seconds(2);
  }

  double TimedRead(const std::string& path) {
    sim::TimePoint t0 = sim.now();
    auto data = sim.RunUntilComplete(olfs->Read(path, 0, 1 * kKiB));
    ROS_CHECK(data.ok());
    return sim::ToSeconds(sim.now() - t0);
  }

  sim::Simulator sim;
  std::unique_ptr<RosSystem> system;
  std::unique_ptr<Olfs> olfs;
};

}  // namespace

int main() {
  Rig rig;
  auto payload = std::vector<std::uint8_t>(32 * kKiB, 0x3C);

  bench::PrintHeader("Table 1: read latency by file location (seconds)");

  // Row 1: file in an open disk bucket.
  ROS_CHECK(rig.sim.RunUntilComplete(
                rig.olfs->Create("/t1/bucket.bin", payload)).ok());
  bench::PrintRow("disk bucket", 0.001, rig.TimedRead("/t1/bucket.bin"),
                  "s");

  // Row 2: file in a closed disc image still in the disk buffer.
  ROS_CHECK(rig.sim.RunUntilComplete(
                rig.olfs->Create("/t1/image.bin", payload)).ok());
  ROS_CHECK(rig.sim.RunUntilComplete(
                rig.olfs->buckets().CloseCurrentBucket()).ok());
  bench::PrintRow("disc image (buffered)", 0.002,
                  rig.TimedRead("/t1/image.bin"), "s");

  // Burn everything; with a zero-byte cache the images leave the buffer.
  ROS_CHECK(rig.sim.RunUntilComplete(rig.olfs->FlushAndDrain()).ok());

  // Row 4: disc array in the roller, free drives (cold fetch).
  ROS_CHECK(rig.sim.RunUntilComplete(
                rig.olfs->Create("/t1/cold.bin", payload)).ok());
  ROS_CHECK(rig.sim.RunUntilComplete(rig.olfs->FlushAndDrain()).ok());
  // The burn parked nothing: bays are empty after burning.
  const double cold = rig.TimedRead("/t1/cold.bin");

  // Row 3: disc already in a drive (array parked by the previous fetch);
  // the administrator unmounted the UDF volume, so the read pays the VFS
  // mount again (the paper's 0.223 s case).
  {
    auto index = rig.sim.RunUntilComplete(rig.olfs->mv().Get("/t1/cold.bin"));
    ROS_CHECK(index.ok());
    const std::string image_id = (*index->Latest())->parts[0].image_id;
    auto record = rig.olfs->images().Lookup(image_id);
    ROS_CHECK(record.ok());
    drive::OpticalDrive* drive =
        rig.olfs->mech().DriveHolding(*(*record)->disc);
    ROS_CHECK(drive != nullptr);
    drive->InvalidateVfs();
    rig.olfs->DropDiscMount(image_id);
    bench::PrintRow("disc in optical drive", 0.223,
                    rig.TimedRead("/t1/cold.bin"), "s");
  }
  bench::PrintRow("disc array in roller, free drives", 70.553, cold, "s");

  // Row 5: every bay holds an idle (parked) array of the wrong discs: the
  // fetch must unload it first. /t1/bucket.bin's array is parked from the
  // previous fetch; read a file whose disc lives in another array.
  ROS_CHECK(rig.sim.RunUntilComplete(
                rig.olfs->Create("/t1/other.bin", payload)).ok());
  ROS_CHECK(rig.sim.RunUntilComplete(rig.olfs->FlushAndDrain()).ok());
  // The flush-burn left the bay empty again; park the first array by
  // touching it, then read the new file.
  (void)rig.TimedRead("/t1/cold.bin");
  bench::PrintRow("disc array in roller, drives not working", 155.037,
                  rig.TimedRead("/t1/other.bin"), "s");

  // Row 6: all drives busy burning -> the read waits for the burn
  // (BusyDrivePolicy::kWaitForBurn), i.e. "minutes".
  ROS_CHECK(rig.sim.RunUntilComplete(
                rig.olfs->Create("/t1/late.bin", payload)).ok());
  ROS_CHECK(rig.sim.RunUntilComplete(
                rig.olfs->buckets().CloseCurrentBucket()).ok());
  ROS_CHECK(rig.sim.RunUntilComplete(
                rig.olfs->burns().FlushPartialArray()).ok());
  // While that array burns, immediately read a disc-resident file.
  const double busy = rig.TimedRead("/t1/cold.bin");
  bench::PrintRow("disc array in roller, all drives busy (min)",
                  2.0, busy / 60.0, "min");
  ROS_CHECK(rig.sim.RunUntilComplete(rig.olfs->burns().DrainAll()).ok());
  bench::PrintNote(
      "paper reports 'minutes'; measured value depends on residual burn time");
  return 0;
}
