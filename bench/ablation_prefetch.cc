// Ablation for §4.1's future-work cache refinements: disc-image-granular
// caching only (baseline) vs the file-granular cache with sibling
// prefetch. Workload: an analytics job scans a cold directory twice, with
// unrelated burn traffic evicting the drives in between — the situation
// where image-granularity caching cannot help but file caching can.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

using namespace ros;
using namespace ros::olfs;

namespace {

struct Result {
  double first_scan_s;
  double second_scan_s;
  std::uint64_t fetches;
};

Result Run(std::uint64_t file_cache_bytes, int prefetch) {
  sim::Simulator sim;
  RosSystem system(sim, TestSystemConfig());
  OlfsParams params;
  params.disc_capacity_override = 16 * kMiB;
  params.read_cache_bytes = 0;
  params.file_cache_bytes = file_cache_bytes;
  params.prefetch_siblings = prefetch;
  Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = sim::Seconds(1);

  constexpr int kFiles = 16;
  Rng rng(3);
  for (int i = 0; i < kFiles; ++i) {
    ROS_CHECK(sim.RunUntilComplete(
                  olfs.Create("/scan/rec" + std::to_string(i),
                              std::vector<std::uint8_t>(16 * kKiB, 0x44)))
                  .ok());
  }
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());

  auto scan = [&] {
    sim::TimePoint t0 = sim.now();
    for (int i = 0; i < kFiles; ++i) {
      auto data = sim.RunUntilComplete(
          olfs.Read("/scan/rec" + std::to_string(i), 0, 16 * kKiB));
      ROS_CHECK(data.ok());
    }
    sim.Run();  // drain background prefetches
    return sim::ToSeconds(sim.now() - t0);
  };
  Result result{};
  result.first_scan_s = scan();

  // Unrelated work evicts the scanned array from the drives.
  // ros-lint: allow(acquire-bay): the ablation deliberately steals a bay
  // outside the scheduler to force an eviction between the two scans.
  auto bay = sim.RunUntilComplete(
      olfs.mech().AcquireBay(std::nullopt, true));
  ROS_CHECK(bay.ok());
  if (olfs.mech().bay_tray(*bay).has_value()) {
    ROS_CHECK(sim.RunUntilComplete(olfs.mech().UnloadArray(*bay)).ok());
  }
  olfs.mech().ReleaseBay(*bay);

  result.second_scan_s = scan();
  result.fetches = olfs.fetches().fetches();
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation (§4.1): image-granular cache vs file cache + prefetch");
  Result baseline = Run(0, 0);
  Result file_cache = Run(64 * kMiB, 0);
  Result prefetch = Run(64 * kMiB, 16);

  std::printf("  %-34s %12s %12s %8s\n", "configuration", "scan 1 (s)",
              "scan 2 (s)", "fetches");
  std::printf("  %-34s %12.1f %12.1f %8llu\n", "image cache only (baseline)",
              baseline.first_scan_s, baseline.second_scan_s,
              static_cast<unsigned long long>(baseline.fetches));
  std::printf("  %-34s %12.1f %12.1f %8llu\n", "+ file-granular cache",
              file_cache.first_scan_s, file_cache.second_scan_s,
              static_cast<unsigned long long>(file_cache.fetches));
  std::printf("  %-34s %12.1f %12.1f %8llu\n", "+ sibling prefetch",
              prefetch.first_scan_s, prefetch.second_scan_s,
              static_cast<unsigned long long>(prefetch.fetches));
  bench::PrintNote(
      "after the drives are reclaimed, only the file cache avoids a second "
      "~70 s mechanical fetch; prefetch also warms the whole directory");
  return 0;
}
