// Throughput of the GF(2^8) parity kernels, scalar reference vs the
// word-sliced / split-nibble tier, printed as one JSON document so the
// speedups land in the bench trajectory:
//
//   {"buffer_bytes":...,"kernels":[
//     {"kernel":"mulacc","scalar_mb_s":...,"sliced_mb_s":...,
//      "speedup":...,"identical":true}, ...]}
//
// Each kernel pair also runs a differential check (same inputs through both
// tiers must produce byte-identical output), so a reported speedup can
// never come from a wrong kernel. Host wall-clock time, not simulated time.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/common/gf256.h"
#include "src/common/json.h"
#include "src/common/rng.h"

namespace {

using namespace ros;
using Buffer = std::vector<std::uint8_t>;

constexpr std::size_t kBufferBytes = 1 << 20;  // 1 MiB per stream
constexpr double kMinSeconds = 0.2;

Buffer RandomBuffer(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Buffer out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

// Runs `op` until kMinSeconds of wall clock elapse; returns MB/s of payload
// swept (bytes_per_call per invocation).
double MeasureMbPerSec(std::size_t bytes_per_call,
                       const std::function<void()>& op) {
  // ros_analyze: allow(wallclock): host-side kernel-throughput timing;
  // never feeds simulator state.
  using Clock = std::chrono::steady_clock;
  op();  // warm the tables and the cache
  std::uint64_t calls = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    for (int i = 0; i < 8; ++i) {
      op();
    }
    calls += 8;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < kMinSeconds);
  return static_cast<double>(calls) * static_cast<double>(bytes_per_call) /
         elapsed / 1e6;
}

struct KernelResult {
  std::string kernel;
  double scalar_mb_s = 0;
  double sliced_mb_s = 0;
  bool identical = false;
};

json::Value ToJson(const KernelResult& r) {
  json::Object o;
  o["kernel"] = r.kernel;
  o["scalar_mb_s"] = r.scalar_mb_s;
  o["sliced_mb_s"] = r.sliced_mb_s;
  o["speedup"] = r.scalar_mb_s > 0 ? r.sliced_mb_s / r.scalar_mb_s : 0.0;
  o["identical"] = r.identical;
  return o;
}

}  // namespace

int main() {
  const Buffer in = RandomBuffer(kBufferBytes, 1);
  const Buffer acc0 = RandomBuffer(kBufferBytes, 2);
  const Buffer q0 = RandomBuffer(kBufferBytes, 3);
  const std::uint8_t coeff = gf256::Pow2(7);
  std::vector<KernelResult> results;

  {
    KernelResult r{.kernel = "xor"};
    Buffer a = acc0;
    Buffer b = acc0;
    gf256::XorAccScalar(a, in);
    gf256::XorAcc(b, in);
    r.identical = a == b;
    r.scalar_mb_s =
        MeasureMbPerSec(kBufferBytes, [&] { gf256::XorAccScalar(a, in); });
    r.sliced_mb_s =
        MeasureMbPerSec(kBufferBytes, [&] { gf256::XorAcc(b, in); });
    results.push_back(r);
  }

  {
    KernelResult r{.kernel = "mulacc"};
    Buffer a = acc0;
    Buffer b = acc0;
    gf256::MulAccScalar(a, coeff, in);
    gf256::MulAcc(b, coeff, in);
    r.identical = a == b;
    r.scalar_mb_s = MeasureMbPerSec(
        kBufferBytes, [&] { gf256::MulAccScalar(a, coeff, in); });
    r.sliced_mb_s =
        MeasureMbPerSec(kBufferBytes, [&] { gf256::MulAcc(b, coeff, in); });
    results.push_back(r);
  }

  {
    KernelResult r{.kernel = "scale"};
    Buffer a = acc0;
    Buffer b = acc0;
    gf256::ScaleScalar(a, coeff);
    gf256::Scale(b, coeff);
    r.identical = a == b;
    r.scalar_mb_s =
        MeasureMbPerSec(kBufferBytes, [&] { gf256::ScaleScalar(a, coeff); });
    r.sliced_mb_s =
        MeasureMbPerSec(kBufferBytes, [&] { gf256::Scale(b, coeff); });
    results.push_back(r);
  }

  {
    // The fused kernel's scalar baseline is what ParityBuilder::Build used
    // to do: one XOR pass for P plus one multiply pass for Q — two sweeps
    // of the member stream. "Payload" is the member bytes, so MB/s is
    // member throughput, directly comparable across variants.
    KernelResult r{.kernel = "pq_fused"};
    Buffer ps = acc0, pf = acc0, qf = q0;
    gf256::XorAccScalar(ps, in);
    Buffer q2 = q0;
    gf256::ScaleScalar(q2, 2);
    gf256::XorAccScalar(q2, in);  // 2q ^ d, the Horner step
    gf256::PQAcc(pf, qf, in);
    r.identical = pf == ps && qf == q2;
    Buffer p1 = acc0, q1 = q0;
    r.scalar_mb_s = MeasureMbPerSec(kBufferBytes, [&] {
      gf256::XorAccScalar(p1, in);
      gf256::MulAccScalar(q1, coeff, in);
    });
    Buffer p3 = acc0, q3 = q0;
    r.sliced_mb_s =
        MeasureMbPerSec(kBufferBytes, [&] { gf256::PQAcc(p3, q3, in); });
    results.push_back(r);
  }

  {
    KernelResult r{.kernel = "solve_two"};
    Buffer da1(kBufferBytes), db1(kBufferBytes);
    Buffer da2(kBufferBytes), db2(kBufferBytes);
    const std::uint8_t ga = gf256::Pow2(3), gb = gf256::Pow2(9);
    gf256::SolveTwoScalar(da1, db1, acc0, q0, ga, gb);
    gf256::SolveTwo(da2, db2, acc0, q0, ga, gb);
    r.identical = da1 == da2 && db1 == db2;
    r.scalar_mb_s = MeasureMbPerSec(kBufferBytes, [&] {
      gf256::SolveTwoScalar(da1, db1, acc0, q0, ga, gb);
    });
    r.sliced_mb_s = MeasureMbPerSec(
        kBufferBytes, [&] { gf256::SolveTwo(da2, db2, acc0, q0, ga, gb); });
    results.push_back(r);
  }

  json::Object doc;
  doc["buffer_bytes"] = static_cast<std::int64_t>(kBufferBytes);
  json::Array kernels;
  for (const KernelResult& r : results) {
    kernels.push_back(ToJson(r));
  }
  doc["kernels"] = std::move(kernels);
  std::printf("%s\n", json::Value(doc).DumpPretty().c_str());
  return 0;
}
