// Ablation for §4.8: the FUSE big_writes mount option. By default FUSE
// flushes 4 KB from user space per kernel round trip; OLFS mounts with
// big_writes so 128 KB moves per trip, recovering streaming throughput.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/frontend/stack.h"
#include "src/olfs/olfs.h"
#include "src/workload/filebench.h"

using namespace ros;
using namespace ros::olfs;

int main() {
  sim::Simulator sim;
  SystemConfig config = TestSystemConfig();
  config.hdds_per_volume = 7;
  config.hdd_capacity = 8 * kGiB;
  RosSystem system(sim, config);
  OlfsParams params;
  params.disc_capacity_override = 2 * kGiB;
  Olfs olfs(sim, &system, params);

  auto measure = [&](bool big_writes, const std::string& path) {
    frontend::FrontendStack stack(sim, frontend::StackConfig::kExt4Olfs,
                                  nullptr, &olfs);
    stack.big_writes = big_writes;
    auto result = sim.RunUntilComplete(workload::SinglestreamWrite(
        sim, stack, path, 512 * kMB));
    ROS_CHECK(result.ok());
    return result->bytes_per_sec() / 1e6;
  };

  bench::PrintHeader("Ablation (§4.8): FUSE big_writes mount option");
  const double big = measure(true, "/fuse/big");
  const double plain = measure(false, "/fuse/plain");
  std::printf("  ext4+OLFS write, big_writes (128 KB/flush): %8.1f MB/s\n",
              big);
  std::printf("  ext4+OLFS write, default (4 KB/flush):      %8.1f MB/s\n",
              plain);
  std::printf("  big_writes speedup:                          %8.2fx\n",
              big / plain);
  bench::PrintNote(
      "the paper: 4 KB flushes cause frequent kernel-user mode switches "
      "and significant overheads; OLFS sets big_writes");
  return 0;
}
