// Paper-scale pipeline run: full-size 25 GB media, the prototype's
// hardware complement, and a multi-TB archival ingest driving the whole
// write path (buckets -> images -> parity -> staggered array burns).
// Validates that the system sustains the paper's implied throughput at
// scale: burning capacity is 2 bays x 12 drives x ~36.8 MB/s ~= 880 MB/s,
// comfortably above a sustained 10 GbE ingest.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/olfs/power.h"
#include "src/sim/time.h"
#include "src/workload/filebench.h"

using namespace ros;
using namespace ros::olfs;

int main() {
  sim::Simulator sim;
  SystemConfig prototype;  // 2 rollers, 24 drives, 14 HDDs, 2 SSDs (§5.1)
  RosSystem rack(sim, prototype);

  OlfsParams params;
  params.disc_type = drive::DiscType::kBdr25;  // native 25 GB media
  params.read_cache_bytes = 2 * kTB;  // most of the 30 TB ends cold
  Olfs olfs(sim, &rack, params);

  // Ingest ~30 TB of archival objects (sparse payloads, real metadata).
  Rng rng(1);
  const std::uint64_t target = 30 * kTB;
  std::uint64_t ingested = 0;
  int files = 0;
  const sim::TimePoint t0 = sim.now();
  while (ingested < target) {
    const std::uint64_t size = 2 * kGB + rng.Below(20 * kGB);
    const std::string path =
        "/pb/batch" + std::to_string(files / 64) + "/obj" +
        std::to_string(files);
    Status status = sim.RunUntilComplete(
        olfs.Create(path, std::vector<std::uint8_t>(256, 0x5C), size));
    ROS_CHECK(status.ok());
    ingested += size;
    ++files;
  }
  const double ingest_hours = sim::ToSeconds(sim.now() - t0) / 3600.0;
  ROS_CHECK(sim.RunUntilComplete(olfs.FlushAndDrain()).ok());
  const double total_hours = sim::ToSeconds(sim.now() - t0) / 3600.0;

  const int arrays = olfs.burns().arrays_burned();
  bench::PrintHeader("Paper-scale pipeline (prototype hardware, 25 GB media)");
  std::printf("  ingested:            %.1f TB in %d files\n",
              static_cast<double>(ingested) / kTB, files);
  std::printf("  ingest wall time:    %.2f simulated hours "
              "(%.0f MB/s sustained)\n",
              ingest_hours,
              BytesToMB(ingested) / (ingest_hours * 3600.0));
  std::printf("  pipeline drained at: %.2f h (burn lag %.2f h)\n",
              total_hours, total_hours - ingest_hours);
  std::printf("  disc arrays burned:  %d (%d discs, %.1f TB raw incl. "
              "parity)\n",
              arrays, arrays * 12,
              static_cast<double>(arrays) * 12 * 25 * kGB / kTB);
  std::printf("  buckets created:     %d\n",
              olfs.buckets().buckets_created());
  std::printf("  namespace entries:   %llu\n",
              static_cast<unsigned long long>(olfs.mv().index_count()));
  std::printf("  rack capacity used:  %d / %d arrays (%.1f%%)\n",
              olfs.da_index().CountState(ArrayState::kUsed),
              2 * mech::kTraysPerRoller,
              100.0 * olfs.da_index().CountState(ArrayState::kUsed) /
                  (2 * mech::kTraysPerRoller));

  // Effective burn throughput vs the Fig 9 array cadence: one 12-disc
  // array per 1146 s per bay -> 2 x 11 x 25 GB / 1146 s ~= 480 MB/s.
  const double burn_mb =
      static_cast<double>(arrays) * 11 * 25 * kGB / 1e6 /
      (total_hours * 3600.0);
  bench::PrintRow("sustained data-to-disc rate",
                  2 * 11 * 25e3 / 1146.0, burn_mb, "MB/s");
  bench::PrintNote(
      "bounded by the Fig 9 per-array cadence (staging stagger + burn + "
      "mechanical swap), both bays in parallel");

  // Inline access at scale: an old object long since evicted from the
  // disk buffer.
  sim::TimePoint r0 = sim.now();
  auto data = sim.RunUntilComplete(olfs.Read("/pb/batch3/obj200", 0, 4096));
  ROS_CHECK(data.ok());
  std::printf("\n  cold read at scale: %.1f s (fetch + wake + mount)\n",
              sim::ToSeconds(sim.now() - r0));
  return 0;
}
