// Reproduces §2.1's TCO analysis (after Gupta et al.): a 1 PB datacenter
// preserved for 100 years costs ~250 K$ on optical discs — about 1/3 of an
// HDD datacenter and 1/2 of a tape datacenter.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/tco.h"

using namespace ros;
using namespace ros::workload;

namespace {
void PrintBreakdown(const TcoBreakdown& b) {
  std::printf("  %-8s purchases %4.0f  media %8.0f$  migration %8.0f$  "
              "operations %8.0f$  total %8.0f$\n",
              b.name.c_str(), b.purchases, b.media_cost, b.migration_cost,
              b.operations_cost, b.total);
}
}  // namespace

int main() {
  auto optical = ComputeTco(OpticalProfile());
  auto hdd = ComputeTco(HddProfile());
  auto tape = ComputeTco(TapeProfile());

  bench::PrintHeader("TCO: 1 PB preserved for 100 years (§2.1)");
  PrintBreakdown(optical);
  PrintBreakdown(hdd);
  PrintBreakdown(tape);

  std::printf("\n");
  bench::PrintRow("optical TCO", 250'000, optical.total, "$/PB");
  bench::PrintRow("HDD / optical ratio", 3.0, hdd.total / optical.total,
                  "x");
  bench::PrintRow("tape / optical ratio", 2.0, tape.total / optical.total,
                  "x");

  bench::PrintHeader("Sensitivity: TCO vs horizon (years)");
  std::printf("  %-8s", "years");
  for (int years : {10, 25, 50, 75, 100}) {
    std::printf(" %10d", years);
  }
  std::printf("\n");
  for (const MediaProfile& profile :
       {OpticalProfile(), HddProfile(), TapeProfile()}) {
    std::printf("  %-8s", profile.name.c_str());
    for (int years : {10, 25, 50, 75, 100}) {
      std::printf(" %9.0fK",
                  ComputeTco(profile, 1.0, years).total / 1000.0);
    }
    std::printf("\n");
  }
  bench::PrintNote(
      "optical's advantage grows with the horizon: no repurchase below 50y");
  return 0;
}
