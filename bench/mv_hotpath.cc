// Metadata fast-path benchmark (DESIGN.md §5d): decoded-index cache,
// range-bounded namespace scans and the allocation-lean index JSON,
// measured against in-bench emulations of the pre-change code paths:
//
//   stat      before: ReadAll + byte->string copy + tree-parse decode
//             after:  MetadataVolume::Get (decoded-index cache hit)
//   create    before: build json::Value tree + Dump + string->byte copy
//             after:  MetadataVolume::Put (hand-rolled single-buffer writer)
//   readdir   before: full file-table sweep + per-name filter + sort
//             after:  MetadataVolume::ListChildren (range scan, subtree skip)
//   count     before: materialize every index name, then .size()
//             after:  MetadataVolume::index_count (CountPrefix)
//
// Prints one JSON document (host wall-clock ops/s; simulated time is
// identical for both stat variants by construction). Also runs a
// differential mode: a randomized Put/Get/Remove/corrupt/wipe/restore
// sequence against a cached MV and a cache-disabled MV must agree on every
// status code and every decoded byte; any divergence fails the run.
//
// Flags: --smoke (tiny sizes, CI), --large (adds 1M entries).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/disk/block_device.h"
#include "src/disk/volume.h"
#include "src/olfs/index_file.h"
#include "src/olfs/metadata_volume.h"
#include "src/sim/simulator.h"

namespace {

using namespace ros;
// ros_analyze: allow(wallclock): host-side hot-path throughput timing;
// never feeds simulator state.
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One MV stack, mirroring the paper's SSD metadata volume.
struct Fixture {
  Fixture(std::uint64_t capacity, std::size_t cache_capacity)
      : device(sim, "ssd", capacity, disk::SsdPerf()),
        volume(sim, &device, disk::MetadataVolumeParams()),
        mv(&volume, cache_capacity) {}

  sim::Simulator sim;
  disk::StorageDevice device;
  disk::Volume volume;
  olfs::MetadataVolume mv;
};

olfs::IndexFile MakeIndex(const std::string& path, std::uint64_t size) {
  olfs::IndexFile index(path, olfs::EntryType::kFile);
  olfs::VersionEntry entry;
  entry.total_size = size;
  entry.parts.push_back({"img-000042", size});
  index.AddVersion(std::move(entry), 15);
  return index;
}

// The pre-change serializer: build a json::Value tree, Dump it, copy the
// string into a byte vector. Mirrors the old IndexFile::ToJson (bench
// indexes carry no forepart).
std::vector<std::uint8_t> LegacyEncode(const olfs::IndexFile& index) {
  json::Object root;
  json::Array entries;
  for (const olfs::VersionEntry& e : index.entries()) {
    json::Object obj;
    obj["ver"] = json::Value(e.version);
    obj["loc"] =
        json::Value(std::string(1, olfs::LocationCode(e.location)));
    obj["size"] = json::Value(static_cast<std::int64_t>(e.total_size));
    obj["del"] = json::Value(e.tombstone);
    json::Array parts;
    for (const olfs::FilePart& p : e.parts) {
      json::Object po;
      po["img"] = json::Value(p.image_id);
      po["size"] = json::Value(static_cast<std::int64_t>(p.size));
      parts.push_back(json::Value(std::move(po)));
    }
    obj["parts"] = json::Value(std::move(parts));
    entries.push_back(json::Value(std::move(obj)));
  }
  root["entries"] = json::Value(std::move(entries));
  root["next_ver"] = json::Value(index.latest_version() + 1);
  root["path"] = json::Value(index.path());
  root["type"] = json::Value(
      index.type() == olfs::EntryType::kFile ? "file" : "dir");
  const std::string doc = json::Value(std::move(root)).Dump();
  return {doc.begin(), doc.end()};
}

// --- coroutine drivers (one RunUntilComplete per measured loop) ---

sim::Task<Status> LegacyCreateMany(disk::Volume* volume,
                                   const std::vector<std::string>* names) {
  for (const std::string& name : *names) {
    const std::string path = name.substr(4);  // strip "/idx"
    const std::vector<std::uint8_t> bytes = LegacyEncode(MakeIndex(path, 64));
    if (!volume->Exists(name)) {
      ROS_CO_RETURN_IF_ERROR(co_await volume->Create(name));
    }
    ROS_CO_RETURN_IF_ERROR(co_await volume->WriteAll(name, bytes));
  }
  co_return OkStatus();
}

sim::Task<Status> FastCreateMany(olfs::MetadataVolume* mv,
                                 const std::vector<std::string>* paths) {
  for (const std::string& path : *paths) {
    ROS_CO_RETURN_IF_ERROR(co_await mv->Put(MakeIndex(path, 64)));
  }
  co_return OkStatus();
}

// Pre-change Get: name mapping, whole-file read, byte->string copy, tree
// decode — exactly what MetadataVolume::Get used to do.
sim::Task<Status> LegacyStatMany(disk::Volume* volume,
                                 const std::vector<std::string>* paths,
                                 int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (const std::string& path : *paths) {
      auto data = co_await volume->ReadAll("/idx" + path);
      if (!data.ok()) {
        co_return data.status();
      }
      const std::string text(data->begin(), data->end());
      auto decoded = olfs::IndexFile::FromJsonTree(text);
      if (!decoded.ok()) {
        co_return decoded.status();
      }
    }
  }
  co_return OkStatus();
}

sim::Task<Status> FastStatMany(const olfs::MetadataVolume* mv,
                               const std::vector<std::string>* paths,
                               int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (const std::string& path : *paths) {
      auto index = co_await mv->GetRef(path);
      if (!index.ok()) {
        co_return index.status();
      }
    }
  }
  co_return OkStatus();
}

// --- pre-change namespace scans ---

// The old Volume::List walked the whole file table for every call; the old
// MetadataVolume::ListChildren then filtered and sorted. ForEachPrefix("")
// reproduces the full sweep (without even charging the old per-name vector
// copies, so the reported speedup is an underestimate).
std::vector<std::string> LegacyListChildren(const disk::Volume& volume,
                                            const std::string& path) {
  const std::string prefix =
      path == "/" ? std::string("/idx/") : "/idx" + path + "/";
  std::vector<std::string> children;
  volume.ForEachPrefix("", [&](const std::string& name, std::uint64_t) {
    if (name.compare(0, prefix.size(), prefix) != 0) {
      return;
    }
    const std::string_view rest =
        std::string_view(name).substr(prefix.size());
    if (rest.empty() || rest.find('/') != std::string_view::npos) {
      return;
    }
    children.emplace_back(rest);
  });
  std::sort(children.begin(), children.end());
  return children;
}

std::uint64_t LegacyIndexCount(const disk::Volume& volume) {
  std::vector<std::string> names;
  volume.ForEachPrefix("", [&](const std::string& name, std::uint64_t) {
    if (name.compare(0, 5, "/idx/") == 0) {
      names.push_back(name);
    }
  });
  return names.size();
}

// --- differential mode ---

olfs::IndexFile RandomIndex(Rng& rng, const std::string& path) {
  olfs::IndexFile index(path, rng.Chance(0.2)
                                  ? olfs::EntryType::kDirectory
                                  : olfs::EntryType::kFile);
  const int versions = static_cast<int>(rng.Below(3)) + 1;
  for (int v = 0; v < versions; ++v) {
    olfs::VersionEntry entry;
    entry.total_size = rng.Below(1 << 20);
    entry.tombstone = rng.Chance(0.1);
    const olfs::LocationKind kinds[] = {olfs::LocationKind::kBucket,
                                        olfs::LocationKind::kImage,
                                        olfs::LocationKind::kDisc};
    entry.location = kinds[rng.Below(3)];
    const int parts = static_cast<int>(rng.Below(2)) + 1;
    for (int p = 0; p < parts; ++p) {
      entry.parts.push_back(
          {"img-" + std::to_string(rng.Below(1000)),
           rng.Below(1 << 19)});
    }
    index.AddVersion(std::move(entry), 15);
  }
  if (rng.Chance(0.3)) {
    std::vector<std::uint8_t> forepart(rng.Below(32) + 1);
    for (auto& b : forepart) {
      b = static_cast<std::uint8_t>(rng.Next());
    }
    index.set_forepart(std::move(forepart));
  }
  return index;
}

// Applies one operation to an MV, reducing the outcome to a comparable
// string: status code for failures, the re-encoded index bytes for reads.
sim::Task<std::string> ApplyOp(olfs::MetadataVolume* mv, int op,
                               std::string path, olfs::IndexFile index,
                               std::vector<std::uint8_t> raw) {
  std::string outcome;
  if (op == 0) {  // Put
    Status status = co_await mv->Put(std::move(index));
    outcome = "put:";
    outcome += StatusCodeName(status.code());
  } else if (op == 1) {  // Get: the shared-ref fast path, then the value
                         // wrapper — both must agree with the plain MV.
    auto got = co_await mv->GetRef(path);
    outcome = "get:";
    if (got.ok()) {
      outcome += (*got)->ToJson();
    } else {
      outcome += StatusCodeName(got.status().code());
    }
    auto copy = co_await mv->Get(path);
    outcome += "|copy:";
    if (copy.ok()) {
      outcome += copy->ToJson();
    } else {
      outcome += StatusCodeName(copy.status().code());
    }
  } else if (op == 2) {  // Remove
    Status status = co_await mv->Remove(std::move(path));
    outcome = "rm:";
    outcome += StatusCodeName(status.code());
  } else {  // Raw volume write behind the MV's back (may be garbage).
    const std::string name = olfs::MetadataVolume::IndexName(path);
    if (!mv->volume()->Exists(name)) {
      outcome = "raw:absent";
    } else {
      Status status =
          co_await mv->volume()->WriteAll(name, std::move(raw));
      outcome = "raw:";
      outcome += StatusCodeName(status.code());
    }
  }
  co_return outcome;
}

// Runs the same randomized operation sequence against a small cached MV and
// a cache-disabled MV; every op outcome and every namespace view must
// match. Returns a list of human-readable mismatches (empty = identical).
std::vector<std::string> RunDifferential(std::uint64_t seed, int ops) {
  constexpr std::size_t kPaths = 64;
  constexpr std::size_t kSmallCache = 32;  // < kPaths, to force evictions
  Fixture cached(256 * kMiB, kSmallCache);
  Fixture plain(256 * kMiB, 0);
  std::vector<std::string> mismatches;

  Rng rng(seed);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < kPaths; ++i) {
    paths.push_back("/diff/d" + std::to_string(i % 8) + "/f" +
                    std::to_string(i));
  }

  for (int i = 0; i < ops; ++i) {
    const std::string& path = paths[rng.Below(paths.size())];
    const int op = static_cast<int>(rng.Below(10));
    // op 0-3: Put, 4-6: Get, 7: Remove, 8: raw rewrite, 9: raw corrupt.
    int kind = 0;
    if (op >= 4 && op <= 6) {
      kind = 1;
    } else if (op == 7) {
      kind = 2;
    } else if (op >= 8) {
      kind = 3;
    }
    olfs::IndexFile index = RandomIndex(rng, path);
    std::vector<std::uint8_t> raw;
    if (kind == 3) {
      if (op == 8) {
        const std::string doc = RandomIndex(rng, path).ToJson();
        raw.assign(doc.begin(), doc.end());
      } else {
        raw.resize(rng.Below(64) + 1);
        for (auto& b : raw) {
          b = static_cast<std::uint8_t>(rng.Next());
        }
      }
    }
    const std::string a = cached.sim.RunUntilComplete(
        ApplyOp(&cached.mv, kind, path, index, raw));
    const std::string b = plain.sim.RunUntilComplete(
        ApplyOp(&plain.mv, kind, path, index, raw));
    if (a != b) {
      mismatches.push_back("op " + std::to_string(i) + " on " + path +
                           ": cached=" + a + " plain=" + b);
    }
    if (cached.mv.cache_size() > kSmallCache) {
      mismatches.push_back("cache exceeded its bound at op " +
                           std::to_string(i));
    }

    if (i == ops / 2) {
      // Mid-sequence: snapshot, wipe, restore — both MVs go through the
      // same transform and must come back identical.
      for (Fixture* f : {&cached, &plain}) {
        auto snapshot = f->sim.RunUntilComplete(
            f->mv.BuildSnapshotImage("mv-snap", 256 * kMiB));
        if (!snapshot.ok()) {
          mismatches.push_back("snapshot failed: " +
                               snapshot.status().ToString());
          continue;
        }
        f->mv.WipeAll();
        Status restored =
            f->sim.RunUntilComplete(f->mv.RestoreFromSnapshot(*snapshot));
        if (!restored.ok()) {
          mismatches.push_back("restore failed: " + restored.ToString());
        }
      }
    }
  }

  // Final sweep: namespace views and every decoded index must agree.
  if (cached.mv.index_count() != plain.mv.index_count()) {
    mismatches.push_back("index_count diverged");
  }
  if (cached.mv.AllPaths() != plain.mv.AllPaths()) {
    mismatches.push_back("AllPaths diverged");
  }
  for (const char* dir : {"/", "/diff", "/diff/d0", "/diff/d5"}) {
    if (cached.mv.ListChildren(dir) != plain.mv.ListChildren(dir)) {
      mismatches.push_back(std::string("ListChildren diverged for ") + dir);
    }
    if (cached.mv.HasChildren(dir) != plain.mv.HasChildren(dir)) {
      mismatches.push_back(std::string("HasChildren diverged for ") + dir);
    }
  }
  for (const std::string& path : paths) {
    const std::string a = cached.sim.RunUntilComplete(
        ApplyOp(&cached.mv, 1, path, olfs::IndexFile(), {}));
    const std::string b = plain.sim.RunUntilComplete(
        ApplyOp(&plain.mv, 1, path, olfs::IndexFile(), {}));
    if (a != b) {
      mismatches.push_back("final read of " + path + " diverged");
    }
  }
  if (cached.mv.cache_stats().evictions == 0) {
    mismatches.push_back("expected LRU evictions with 64 paths in a "
                         "32-entry cache");
  }
  return mismatches;
}

struct OpResult {
  std::string op;
  double baseline_ops_s = 0;
  double fast_ops_s = 0;
};

json::Value ToJson(const OpResult& r) {
  json::Object o;
  o["op"] = r.op;
  o["baseline_ops_s"] = r.baseline_ops_s;
  o["fast_ops_s"] = r.fast_ops_s;
  o["speedup"] = r.baseline_ops_s > 0 ? r.fast_ops_s / r.baseline_ops_s : 0.0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--large") == 0) {
      large = true;
    }
  }

  std::vector<std::size_t> sizes;
  if (smoke) {
    sizes = {1000};
  } else {
    sizes = {10'000, 100'000};
    if (large) {
      sizes.push_back(1'000'000);
    }
  }
  const std::size_t stat_sample = smoke ? 256 : 2048;
  const int stat_rounds = smoke ? 4 : 8;
  const int readdir_calls = smoke ? 16 : 64;
  const int count_calls = smoke ? 4 : 16;

  json::Array size_results;
  for (const std::size_t n : sizes) {
    // ~256 files per directory, one block per index file.
    const std::size_t dirs = std::max<std::size_t>(1, n / 256);
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(n) * 4 * kKiB + 64 * kMiB;
    Fixture fx(capacity, olfs::MetadataVolume::kDefaultCacheCapacity);

    std::vector<std::string> paths;
    std::vector<std::string> names;  // "/idx" + path
    paths.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      paths.push_back("/bench/d" + std::to_string(i % dirs) + "/f" +
                      std::to_string(i / dirs));
      names.push_back(olfs::MetadataVolume::IndexName(paths.back()));
    }

    OpResult create{.op = "create"};
    {
      auto start = Clock::now();
      Status status =
          fx.sim.RunUntilComplete(LegacyCreateMany(&fx.volume, &names));
      create.baseline_ops_s =
          status.ok() ? static_cast<double>(n) / SecondsSince(start) : 0;
      if (!status.ok()) {
        std::fprintf(stderr, "legacy create failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    fx.mv.WipeAll();
    {
      auto start = Clock::now();
      Status status =
          fx.sim.RunUntilComplete(FastCreateMany(&fx.mv, &paths));
      create.fast_ops_s =
          status.ok() ? static_cast<double>(n) / SecondsSince(start) : 0;
      if (!status.ok()) {
        std::fprintf(stderr, "create failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }

    // Hot stat set: a uniform sample of paths, revisited every round.
    std::vector<std::string> sample_paths;
    const std::size_t stride = std::max<std::size_t>(1, n / stat_sample);
    for (std::size_t i = 0; i < n; i += stride) {
      sample_paths.push_back(paths[i]);
    }
    const double stat_ops = static_cast<double>(sample_paths.size());

    // Best-of-rounds for both sides: each round is timed on its own and the
    // fastest kept, so a scheduler hiccup during one round doesn't skew the
    // ratio (both paths get the identical treatment).
    OpResult stat{.op = "stat"};
    for (int r = 0; r < stat_rounds; ++r) {
      auto start = Clock::now();
      Status status = fx.sim.RunUntilComplete(
          LegacyStatMany(&fx.volume, &sample_paths, 1));
      if (!status.ok()) {
        std::fprintf(stderr, "legacy stat failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      stat.baseline_ops_s =
          std::max(stat.baseline_ops_s, stat_ops / SecondsSince(start));
    }
    {
      // One warm pass (the Puts above already populated the cache; this
      // covers entries evicted since), then the measured rounds.
      Status warm = fx.sim.RunUntilComplete(
          FastStatMany(&fx.mv, &sample_paths, 1));
      if (!warm.ok()) {
        std::fprintf(stderr, "stat warmup failed: %s\n",
                     warm.ToString().c_str());
        return 1;
      }
    }
    for (int r = 0; r < stat_rounds; ++r) {
      auto start = Clock::now();
      Status status = fx.sim.RunUntilComplete(
          FastStatMany(&fx.mv, &sample_paths, 1));
      if (!status.ok()) {
        std::fprintf(stderr, "stat failed: %s\n", status.ToString().c_str());
        return 1;
      }
      stat.fast_ops_s =
          std::max(stat.fast_ops_s, stat_ops / SecondsSince(start));
    }

    // readdir over a rotating set of directories.
    OpResult readdir{.op = "readdir"};
    {
      std::size_t entries_seen = 0;
      auto start = Clock::now();
      for (int i = 0; i < readdir_calls; ++i) {
        entries_seen += LegacyListChildren(
            fx.volume, "/bench/d" + std::to_string(i % dirs)).size();
      }
      readdir.baseline_ops_s = readdir_calls / SecondsSince(start);
      if (entries_seen == 0) {
        std::fprintf(stderr, "legacy readdir saw no entries\n");
        return 1;
      }
    }
    {
      std::size_t entries_seen = 0;
      auto start = Clock::now();
      for (int i = 0; i < readdir_calls; ++i) {
        entries_seen +=
            fx.mv.ListChildren("/bench/d" + std::to_string(i % dirs)).size();
      }
      readdir.fast_ops_s = readdir_calls / SecondsSince(start);
      if (entries_seen == 0) {
        std::fprintf(stderr, "readdir saw no entries\n");
        return 1;
      }
    }

    OpResult count{.op = "index_count"};
    {
      auto start = Clock::now();
      std::uint64_t total = 0;
      for (int i = 0; i < count_calls; ++i) {
        total += LegacyIndexCount(fx.volume);
      }
      count.baseline_ops_s = count_calls / SecondsSince(start);
      if (total != static_cast<std::uint64_t>(n) * count_calls) {
        std::fprintf(stderr, "legacy index_count mismatch\n");
        return 1;
      }
    }
    {
      auto start = Clock::now();
      std::uint64_t total = 0;
      for (int i = 0; i < count_calls; ++i) {
        total += fx.mv.index_count();
      }
      count.fast_ops_s = count_calls / SecondsSince(start);
      if (total != static_cast<std::uint64_t>(n) * count_calls) {
        std::fprintf(stderr, "index_count mismatch\n");
        return 1;
      }
    }

    double snapshot_entries_s = 0;
    {
      auto start = Clock::now();
      auto snapshot = fx.sim.RunUntilComplete(
          fx.mv.BuildSnapshotImage("mv-bench-snap", capacity));
      if (!snapshot.ok()) {
        std::fprintf(stderr, "snapshot build failed: %s\n",
                     snapshot.status().ToString().c_str());
        return 1;
      }
      snapshot_entries_s = static_cast<double>(n) / SecondsSince(start);
    }

    json::Object row;
    row["entries"] = json::Value(static_cast<std::int64_t>(n));
    json::Array ops;
    for (const OpResult& r : {create, stat, readdir, count}) {
      ops.push_back(ToJson(r));
    }
    row["ops"] = json::Value(std::move(ops));
    row["snapshot_build_entries_s"] = json::Value(snapshot_entries_s);
    json::Object cache;
    cache["hits"] = json::Value(
        static_cast<std::int64_t>(fx.mv.cache_stats().hits));
    cache["misses"] = json::Value(
        static_cast<std::int64_t>(fx.mv.cache_stats().misses));
    cache["evictions"] = json::Value(
        static_cast<std::int64_t>(fx.mv.cache_stats().evictions));
    row["cache"] = json::Value(std::move(cache));
    size_results.push_back(json::Value(std::move(row)));
  }

  const std::vector<std::string> mismatches =
      RunDifferential(/*seed=*/0x5eedu, smoke ? 200 : 600);
  for (const std::string& m : mismatches) {
    std::fprintf(stderr, "differential mismatch: %s\n", m.c_str());
  }

  json::Object doc;
  doc["bench"] = json::Value("mv_hotpath");
  doc["results"] = json::Value(std::move(size_results));
  doc["differential_identical"] = json::Value(mismatches.empty());
  std::printf("%s\n", json::Value(std::move(doc)).DumpPretty().c_str());
  return mismatches.empty() ? 0 : 1;
}
