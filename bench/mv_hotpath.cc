// Metadata store benchmark (DESIGN.md §5d + §5i): the log-structured MV
// backend measured against the legacy one-JSON-file-per-entry backend,
// API-to-API — both sides run the same MetadataVolume drivers, only
// `Options::log_structured` differs:
//
//   create    64 concurrent writers; legacy pays Create+WriteAll per
//             entry, log-structured group-commits them into batched WAL
//             appends (the tentpole win)
//   stat      GetRef over a hot sample (decoded-index cache on both)
//   readdir   ListChildren (volume range scan vs keydir range scan)
//   count     index_count (CountPrefix walk vs O(1) keydir counter)
//
// Each op reports host wall-clock ops/s AND simulated seconds (the
// deterministic number CI can gate on), plus simulated p50/p99 latency for
// create and stat. Differential modes: (a) cached-vs-plain MV per backend,
// (b) legacy-vs-LS — the same randomized Put/Get/Remove/snapshot/wipe/
// restore sequence against both backends must agree on every status code
// and every decoded byte, and a crash-replayed (re-attached) LS store must
// match too; any divergence fails the run.
//
// Flags: --smoke (tiny sizes, CI), --large (adds 1M entries to the
// comparison), --scale (LS-only 1M + 10M with RSS gate and recovery
// timing), --scale-smoke (LS-only 1M, for the mv-scale-smoke CI job).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/disk/block_device.h"
#include "src/disk/volume.h"
#include "src/olfs/index_file.h"
#include "src/olfs/metadata_volume.h"
#include "src/sim/join.h"
#include "src/sim/simulator.h"

namespace {

using namespace ros;
// ros_analyze: allow(wallclock): host-side hot-path throughput timing;
// never feeds simulator state.
using Clock = std::chrono::steady_clock;

constexpr std::size_t kCreateWriters = 64;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Resident set from /proc/self/statm, for the scale-mode memory gate.
std::uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long pages = 0;
  unsigned long resident = 0;
  const int got = std::fscanf(f, "%lu %lu", &pages, &resident);
  std::fclose(f);
  if (got != 2) {
    return 0;
  }
  return static_cast<std::uint64_t>(resident) *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

// One MV stack, mirroring the paper's SSD metadata volume. The store can
// be re-attached (destroyed and rebuilt over the same volume) to measure
// crash recovery.
struct Fixture {
  Fixture(std::uint64_t capacity, std::size_t cache_capacity)
      : device(sim, "ssd", capacity, disk::SsdPerf()),
        volume(sim, &device, disk::MetadataVolumeParams()),
        mv(std::make_unique<olfs::MetadataVolume>(&volume, cache_capacity)) {
  }
  Fixture(std::uint64_t capacity, olfs::MetadataVolume::Options options)
      : device(sim, "ssd", capacity, disk::SsdPerf()),
        volume(sim, &device, disk::MetadataVolumeParams()),
        mv(std::make_unique<olfs::MetadataVolume>(sim, &volume, options)) {}

  // Destroys the store object and attaches a fresh one over the same
  // volume contents — the crash model (host dies, SSD pair survives).
  void Reattach(olfs::MetadataVolume::Options options) {
    mv.reset();  // old observer must unregister before the new one lands
    mv = std::make_unique<olfs::MetadataVolume>(sim, &volume, options);
  }

  sim::Simulator sim;
  disk::StorageDevice device;
  disk::Volume volume;
  std::unique_ptr<olfs::MetadataVolume> mv;
};

olfs::MetadataVolume::Options LsOptions(std::size_t cache_capacity) {
  olfs::MetadataVolume::Options options;
  options.log_structured = true;
  options.cache_capacity = cache_capacity;
  return options;
}

olfs::MetadataVolume::Options LegacyOptions(std::size_t cache_capacity) {
  olfs::MetadataVolume::Options options;
  options.log_structured = false;
  options.cache_capacity = cache_capacity;
  return options;
}

olfs::IndexFile MakeIndex(const std::string& path, std::uint64_t size) {
  olfs::IndexFile index(path, olfs::EntryType::kFile);
  olfs::VersionEntry entry;
  entry.total_size = size;
  entry.parts.push_back({"img-000042", size});
  index.AddVersion(std::move(entry), 15);
  return index;
}

// --- coroutine drivers (one RunUntilComplete per measured loop) ---

// One of kCreateWriters concurrent writers: strided slice of the paths,
// per-Put simulated latency recorded (this is where the log-structured
// backend's group commit coalesces appends across writers).
sim::Task<Status> CreateShard(sim::Simulator* sim, olfs::MetadataVolume* mv,
                              const std::vector<std::string>* paths,
                              std::size_t first, std::size_t stride,
                              std::vector<double>* latencies_us) {
  for (std::size_t i = first; i < paths->size(); i += stride) {
    const sim::TimePoint start = sim->now();
    ROS_CO_RETURN_IF_ERROR(co_await mv->Put(MakeIndex((*paths)[i], 64)));
    latencies_us->push_back(sim::ToSeconds(sim->now() - start) * 1e6);
  }
  co_return OkStatus();
}

sim::Task<Status> CreateConcurrent(sim::Simulator* sim,
                                   olfs::MetadataVolume* mv,
                                   const std::vector<std::string>* paths,
                                   std::vector<double>* latencies_us) {
  std::vector<sim::Task<Status>> writers;
  const std::size_t stride =
      std::min(kCreateWriters, std::max<std::size_t>(1, paths->size()));
  writers.reserve(stride);
  for (std::size_t w = 0; w < stride; ++w) {
    writers.push_back(
        CreateShard(sim, mv, paths, w, stride, latencies_us));
  }
  co_return co_await sim::AllOk(*sim, std::move(writers));
}

sim::Task<Status> StatMany(sim::Simulator* sim,
                           const olfs::MetadataVolume* mv,
                           const std::vector<std::string>* paths,
                           std::vector<double>* latencies_us) {
  for (const std::string& path : *paths) {
    const sim::TimePoint start = sim->now();
    auto index = co_await mv->GetRef(path);
    if (!index.ok()) {
      co_return index.status();
    }
    if (latencies_us != nullptr) {
      latencies_us->push_back(sim::ToSeconds(sim->now() - start) * 1e6);
    }
  }
  co_return OkStatus();
}

// --- differential modes ---

olfs::IndexFile RandomIndex(Rng& rng, const std::string& path) {
  olfs::IndexFile index(path, rng.Chance(0.2)
                                  ? olfs::EntryType::kDirectory
                                  : olfs::EntryType::kFile);
  const int versions = static_cast<int>(rng.Below(3)) + 1;
  for (int v = 0; v < versions; ++v) {
    olfs::VersionEntry entry;
    entry.total_size = rng.Below(1 << 20);
    entry.tombstone = rng.Chance(0.1);
    const olfs::LocationKind kinds[] = {olfs::LocationKind::kBucket,
                                        olfs::LocationKind::kImage,
                                        olfs::LocationKind::kDisc};
    entry.location = kinds[rng.Below(3)];
    const int parts = static_cast<int>(rng.Below(2)) + 1;
    for (int p = 0; p < parts; ++p) {
      entry.parts.push_back(
          {"img-" + std::to_string(rng.Below(1000)),
           rng.Below(1 << 19)});
    }
    index.AddVersion(std::move(entry), 15);
  }
  if (rng.Chance(0.3)) {
    std::vector<std::uint8_t> forepart(rng.Below(32) + 1);
    for (auto& b : forepart) {
      b = static_cast<std::uint8_t>(rng.Next());
    }
    index.set_forepart(std::move(forepart));
  }
  return index;
}

// Applies one operation to an MV, reducing the outcome to a comparable
// string: status code for failures, the re-encoded index bytes for reads.
sim::Task<std::string> ApplyOp(olfs::MetadataVolume* mv, int op,
                               std::string path, olfs::IndexFile index,
                               std::vector<std::uint8_t> raw) {
  std::string outcome;
  if (op == 0) {  // Put
    Status status = co_await mv->Put(std::move(index));
    outcome = "put:";
    outcome += StatusCodeName(status.code());
  } else if (op == 1) {  // Get: the shared-ref fast path, then the value
                         // wrapper — both must agree with the plain MV.
    auto got = co_await mv->GetRef(path);
    outcome = "get:";
    if (got.ok()) {
      outcome += (*got)->ToJson();
    } else {
      outcome += StatusCodeName(got.status().code());
    }
    auto copy = co_await mv->Get(path);
    outcome += "|copy:";
    if (copy.ok()) {
      outcome += copy->ToJson();
    } else {
      outcome += StatusCodeName(copy.status().code());
    }
  } else if (op == 2) {  // Remove
    Status status = co_await mv->Remove(std::move(path));
    outcome = "rm:";
    outcome += StatusCodeName(status.code());
  } else {  // Raw volume write behind the MV's back (may be garbage).
    const std::string name = olfs::MetadataVolume::IndexName(path);
    if (!mv->volume()->Exists(name)) {
      outcome = "raw:absent";
    } else {
      Status status =
          co_await mv->volume()->WriteAll(name, std::move(raw));
      outcome = "raw:";
      outcome += StatusCodeName(status.code());
    }
  }
  co_return outcome;
}

// Compares two MVs' namespace views; appends human-readable mismatches.
void CompareViews(olfs::MetadataVolume& a, olfs::MetadataVolume& b,
                  const std::string& tag,
                  std::vector<std::string>* mismatches) {
  if (a.index_count() != b.index_count()) {
    mismatches->push_back(tag + ": index_count diverged");
  }
  if (a.AllPaths() != b.AllPaths()) {
    mismatches->push_back(tag + ": AllPaths diverged");
  }
  for (const char* dir : {"/", "/diff", "/diff/d0", "/diff/d5"}) {
    if (a.ListChildren(dir) != b.ListChildren(dir)) {
      mismatches->push_back(tag + ": ListChildren diverged for " + dir);
    }
    if (a.HasChildren(dir) != b.HasChildren(dir)) {
      mismatches->push_back(tag + ": HasChildren diverged for " + dir);
    }
  }
}

// Runs the same randomized operation sequence against a small cached MV and
// a cache-disabled MV of the SAME backend; every op outcome and every
// namespace view must match. Returns mismatches (empty = identical).
std::vector<std::string> RunDifferential(std::uint64_t seed, int ops,
                                         bool log_structured) {
  constexpr std::size_t kPaths = 64;
  constexpr std::size_t kSmallCache = 32;  // < kPaths, to force evictions
  const std::string tag = log_structured ? "ls" : "legacy";
  Fixture cached(256 * kMiB, log_structured ? LsOptions(kSmallCache)
                                            : LegacyOptions(kSmallCache));
  Fixture plain(256 * kMiB,
                log_structured ? LsOptions(0) : LegacyOptions(0));
  std::vector<std::string> mismatches;

  Rng rng(seed);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < kPaths; ++i) {
    paths.push_back("/diff/d" + std::to_string(i % 8) + "/f" +
                    std::to_string(i));
  }

  for (int i = 0; i < ops; ++i) {
    const std::string& path = paths[rng.Below(paths.size())];
    const int op = static_cast<int>(rng.Below(10));
    // op 0-3: Put, 4-6: Get, 7: Remove, 8: raw rewrite, 9: raw corrupt.
    int kind = 0;
    if (op >= 4 && op <= 6) {
      kind = 1;
    } else if (op == 7) {
      kind = 2;
    } else if (op >= 8) {
      kind = 3;
    }
    olfs::IndexFile index = RandomIndex(rng, path);
    std::vector<std::uint8_t> raw;
    if (kind == 3) {
      if (op == 8) {
        const std::string doc = RandomIndex(rng, path).ToJson();
        raw.assign(doc.begin(), doc.end());
      } else {
        raw.resize(rng.Below(64) + 1);
        for (auto& b : raw) {
          b = static_cast<std::uint8_t>(rng.Next());
        }
      }
    }
    const std::string a = cached.sim.RunUntilComplete(
        ApplyOp(cached.mv.get(), kind, path, index, raw));
    const std::string b = plain.sim.RunUntilComplete(
        ApplyOp(plain.mv.get(), kind, path, index, raw));
    if (a != b) {
      mismatches.push_back(tag + ": op " + std::to_string(i) + " on " +
                           path + ": cached=" + a + " plain=" + b);
    }
    if (cached.mv->cache_size() > kSmallCache) {
      mismatches.push_back(tag + ": cache exceeded its bound at op " +
                           std::to_string(i));
    }

    if (i == ops / 2) {
      // Mid-sequence: snapshot, wipe, restore — both MVs go through the
      // same transform and must come back identical.
      for (Fixture* f : {&cached, &plain}) {
        auto snapshot = f->sim.RunUntilComplete(
            f->mv->BuildSnapshotImage("mv-snap", 256 * kMiB));
        if (!snapshot.ok()) {
          mismatches.push_back(tag + ": snapshot failed: " +
                               snapshot.status().ToString());
          continue;
        }
        f->mv->WipeAll();
        Status restored =
            f->sim.RunUntilComplete(f->mv->RestoreFromSnapshot(*snapshot));
        if (!restored.ok()) {
          mismatches.push_back(tag + ": restore failed: " +
                               restored.ToString());
        }
      }
    }
  }

  // Final sweep: namespace views and every decoded index must agree.
  CompareViews(*cached.mv, *plain.mv, tag, &mismatches);
  for (const std::string& path : paths) {
    const std::string a = cached.sim.RunUntilComplete(
        ApplyOp(cached.mv.get(), 1, path, olfs::IndexFile(), {}));
    const std::string b = plain.sim.RunUntilComplete(
        ApplyOp(plain.mv.get(), 1, path, olfs::IndexFile(), {}));
    if (a != b) {
      mismatches.push_back(tag + ": final read of " + path + " diverged");
    }
  }
  if (cached.mv->cache_stats().evictions == 0) {
    mismatches.push_back(tag +
                         ": expected LRU evictions with 64 paths in a "
                         "32-entry cache");
  }
  return mismatches;
}

// Legacy-vs-log-structured: the same Put/Get/Remove sequence against both
// backends must agree on every status code and every decoded byte, through
// a mid-sequence snapshot/wipe/restore AND a crash-replay (the LS store is
// re-attached from its volume and must still match the legacy views).
std::vector<std::string> RunBackendDifferential(std::uint64_t seed,
                                                int ops) {
  Fixture legacy(256 * kMiB, LegacyOptions(32));
  Fixture ls(256 * kMiB, LsOptions(32));
  std::vector<std::string> mismatches;

  Rng rng(seed);
  constexpr std::size_t kPaths = 64;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < kPaths; ++i) {
    paths.push_back("/diff/d" + std::to_string(i % 8) + "/f" +
                    std::to_string(i));
  }

  for (int i = 0; i < ops; ++i) {
    const std::string& path = paths[rng.Below(paths.size())];
    const int op = static_cast<int>(rng.Below(8));
    // op 0-3: Put, 4-6: Get, 7: Remove. (No raw volume pokes here: the
    // backends' on-volume layouts are intentionally different.)
    int kind = 0;
    if (op >= 4 && op <= 6) {
      kind = 1;
    } else if (op == 7) {
      kind = 2;
    }
    olfs::IndexFile index = RandomIndex(rng, path);
    const std::string a = legacy.sim.RunUntilComplete(
        ApplyOp(legacy.mv.get(), kind, path, index, {}));
    const std::string b = ls.sim.RunUntilComplete(
        ApplyOp(ls.mv.get(), kind, path, index, {}));
    if (a != b) {
      mismatches.push_back("backend: op " + std::to_string(i) + " on " +
                           path + ": legacy=" + a + " ls=" + b);
    }

    if (i == ops / 2) {
      // Snapshots are backend-independent: build on each, restore on each.
      for (Fixture* f : {&legacy, &ls}) {
        auto snapshot = f->sim.RunUntilComplete(
            f->mv->BuildSnapshotImage("mv-snap", 256 * kMiB));
        if (!snapshot.ok()) {
          mismatches.push_back("backend: snapshot failed: " +
                               snapshot.status().ToString());
          continue;
        }
        f->mv->WipeAll();
        Status restored =
            f->sim.RunUntilComplete(f->mv->RestoreFromSnapshot(*snapshot));
        if (!restored.ok()) {
          mismatches.push_back("backend: restore failed: " +
                               restored.ToString());
        }
      }
    }
  }

  CompareViews(*legacy.mv, *ls.mv, "backend", &mismatches);
  for (const std::string& path : paths) {
    const std::string a = legacy.sim.RunUntilComplete(
        ApplyOp(legacy.mv.get(), 1, path, olfs::IndexFile(), {}));
    const std::string b = ls.sim.RunUntilComplete(
        ApplyOp(ls.mv.get(), 1, path, olfs::IndexFile(), {}));
    if (a != b) {
      mismatches.push_back("backend: final read of " + path + " diverged");
    }
  }

  // Crash-replay: drop the LS store object mid-life (acked mutations only
  // — RunUntilComplete returned for each), re-attach from the volume, and
  // replay. The recovered store must still match the legacy one.
  ls.Reattach(LsOptions(32));
  Status opened = ls.sim.RunUntilComplete(ls.mv->Open());
  if (!opened.ok()) {
    mismatches.push_back("backend: recovery open failed: " +
                         opened.ToString());
  }
  CompareViews(*legacy.mv, *ls.mv, "backend-replayed", &mismatches);
  for (const std::string& path : paths) {
    const std::string a = legacy.sim.RunUntilComplete(
        ApplyOp(legacy.mv.get(), 1, path, olfs::IndexFile(), {}));
    const std::string b = ls.sim.RunUntilComplete(
        ApplyOp(ls.mv.get(), 1, path, olfs::IndexFile(), {}));
    if (a != b) {
      mismatches.push_back("backend-replayed: read of " + path +
                           " diverged");
    }
  }
  return mismatches;
}

// --- measured sections ---

struct OpResult {
  std::string op;
  double baseline_ops_s = 0;
  double fast_ops_s = 0;
  double baseline_sim_s = 0;
  double fast_sim_s = 0;
};

json::Value ToJson(const OpResult& r) {
  json::Object o;
  o["op"] = r.op;
  o["baseline_ops_s"] = r.baseline_ops_s;
  o["fast_ops_s"] = r.fast_ops_s;
  o["speedup"] = r.baseline_ops_s > 0 ? r.fast_ops_s / r.baseline_ops_s : 0.0;
  o["baseline_sim_s"] = r.baseline_sim_s;
  o["fast_sim_s"] = r.fast_sim_s;
  o["sim_speedup"] =
      r.fast_sim_s > 0 ? r.baseline_sim_s / r.fast_sim_s : 0.0;
  return o;
}

json::Value ToJson(const SummaryStats& s) {
  json::Object o;
  o["p50_us"] = s.p50;
  o["p99_us"] = s.p99;
  o["mean_us"] = s.mean;
  o["max_us"] = s.max;
  return o;
}

std::vector<std::string> MakePaths(std::size_t n) {
  const std::size_t dirs = std::max<std::size_t>(1, n / 256);
  std::vector<std::string> paths;
  paths.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    paths.push_back("/bench/d" + std::to_string(i % dirs) + "/f" +
                    std::to_string(i / dirs));
  }
  return paths;
}

// Everything measured for one backend at one size.
struct BackendRun {
  double create_ops_s = 0;
  double create_sim_s = 0;
  SummaryStats create_lat;
  double stat_ops_s = 0;
  double stat_sim_s = 0;
  SummaryStats stat_lat;
  double readdir_ops_s = 0;
  double count_ops_s = 0;
  double snapshot_entries_s = 0;
  olfs::MetadataVolume::CacheStats cache;
  olfs::MetadataVolume::StoreStats store;
  bool ok = false;
};

BackendRun MeasureBackend(bool log_structured, std::size_t n,
                          std::size_t stat_sample, int stat_rounds,
                          int readdir_calls, int count_calls) {
  BackendRun out;
  const std::size_t dirs = std::max<std::size_t>(1, n / 256);
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(n) * 4 * kKiB + 64 * kMiB;
  Fixture fx(capacity,
             log_structured
                 ? LsOptions(olfs::MetadataVolume::kDefaultCacheCapacity)
                 : LegacyOptions(olfs::MetadataVolume::kDefaultCacheCapacity));
  const std::vector<std::string> paths = MakePaths(n);

  {
    std::vector<double> latencies_us;
    latencies_us.reserve(n);
    const sim::TimePoint sim_start = fx.sim.now();
    auto start = Clock::now();
    Status status = fx.sim.RunUntilComplete(
        CreateConcurrent(&fx.sim, fx.mv.get(), &paths, &latencies_us));
    if (!status.ok()) {
      std::fprintf(stderr, "create failed: %s\n", status.ToString().c_str());
      return out;
    }
    out.create_ops_s = static_cast<double>(n) / SecondsSince(start);
    out.create_sim_s = sim::ToSeconds(fx.sim.now() - sim_start);
    out.create_lat = Summarize(std::move(latencies_us));
  }

  // Hot stat set: a uniform sample of paths, revisited every round;
  // best-of-rounds host timing so a scheduler hiccup doesn't skew ratios.
  std::vector<std::string> sample_paths;
  const std::size_t stride = std::max<std::size_t>(1, n / stat_sample);
  for (std::size_t i = 0; i < n; i += stride) {
    sample_paths.push_back(paths[i]);
  }
  const double stat_ops = static_cast<double>(sample_paths.size());
  {
    Status warm = fx.sim.RunUntilComplete(
        StatMany(&fx.sim, fx.mv.get(), &sample_paths, nullptr));
    if (!warm.ok()) {
      std::fprintf(stderr, "stat warmup failed: %s\n",
                   warm.ToString().c_str());
      return out;
    }
  }
  std::vector<double> stat_lat_us;
  for (int r = 0; r < stat_rounds; ++r) {
    stat_lat_us.clear();
    stat_lat_us.reserve(sample_paths.size());
    const sim::TimePoint sim_start = fx.sim.now();
    auto start = Clock::now();
    Status status = fx.sim.RunUntilComplete(
        StatMany(&fx.sim, fx.mv.get(), &sample_paths, &stat_lat_us));
    if (!status.ok()) {
      std::fprintf(stderr, "stat failed: %s\n", status.ToString().c_str());
      return out;
    }
    out.stat_ops_s = std::max(out.stat_ops_s, stat_ops / SecondsSince(start));
    out.stat_sim_s = sim::ToSeconds(fx.sim.now() - sim_start);
  }
  out.stat_lat = Summarize(std::move(stat_lat_us));

  {
    std::size_t entries_seen = 0;
    auto start = Clock::now();
    for (int i = 0; i < readdir_calls; ++i) {
      entries_seen +=
          fx.mv->ListChildren("/bench/d" + std::to_string(i % dirs)).size();
    }
    out.readdir_ops_s = readdir_calls / SecondsSince(start);
    if (entries_seen == 0) {
      std::fprintf(stderr, "readdir saw no entries\n");
      return out;
    }
  }

  {
    auto start = Clock::now();
    std::uint64_t total = 0;
    for (int i = 0; i < count_calls; ++i) {
      total += fx.mv->index_count();
    }
    out.count_ops_s = count_calls / SecondsSince(start);
    if (total != static_cast<std::uint64_t>(n) * count_calls) {
      std::fprintf(stderr, "index_count mismatch\n");
      return out;
    }
  }

  {
    auto start = Clock::now();
    auto snapshot = fx.sim.RunUntilComplete(
        fx.mv->BuildSnapshotImage("mv-bench-snap", capacity));
    if (!snapshot.ok()) {
      std::fprintf(stderr, "snapshot build failed: %s\n",
                   snapshot.status().ToString().c_str());
      return out;
    }
    out.snapshot_entries_s = static_cast<double>(n) / SecondsSince(start);
  }

  out.cache = fx.mv->cache_stats();
  out.store = fx.mv->store_stats();
  out.ok = true;
  return out;
}

// LS-only scale run: create at scale, stat a sample, then crash-replay the
// whole store and time recovery. Gates (deterministic or stable only):
// RSS per entry bounded, memtable bounded, recovered count exact.
json::Value RunScale(std::size_t n, std::vector<std::string>* failures) {
  json::Object row;
  row["entries"] = json::Value(static_cast<std::int64_t>(n));
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(n) * 1 * kKiB + 512 * kMiB;
  Fixture fx(capacity,
             LsOptions(olfs::MetadataVolume::kDefaultCacheCapacity));
  const std::vector<std::string> paths = MakePaths(n);
  const std::uint64_t rss_before = CurrentRssBytes();

  {
    std::vector<double> latencies_us;
    latencies_us.reserve(n);
    const sim::TimePoint sim_start = fx.sim.now();
    auto start = Clock::now();
    Status status = fx.sim.RunUntilComplete(
        CreateConcurrent(&fx.sim, fx.mv.get(), &paths, &latencies_us));
    if (!status.ok()) {
      failures->push_back("scale create failed: " + status.ToString());
      return json::Value(std::move(row));
    }
    row["create_ops_s"] =
        json::Value(static_cast<double>(n) / SecondsSince(start));
    row["create_sim_s"] =
        json::Value(sim::ToSeconds(fx.sim.now() - sim_start));
    row["create_latency"] = ToJson(Summarize(std::move(latencies_us)));
  }

  {
    std::vector<std::string> sample;
    const std::size_t stride = std::max<std::size_t>(1, n / 2048);
    for (std::size_t i = 0; i < n; i += stride) {
      sample.push_back(paths[i]);
    }
    std::vector<double> lat_us;
    lat_us.reserve(sample.size());
    auto start = Clock::now();
    Status status = fx.sim.RunUntilComplete(
        StatMany(&fx.sim, fx.mv.get(), &sample, &lat_us));
    if (!status.ok()) {
      failures->push_back("scale stat failed: " + status.ToString());
      return json::Value(std::move(row));
    }
    row["stat_ops_s"] = json::Value(static_cast<double>(sample.size()) /
                                    SecondsSince(start));
    row["stat_latency"] = ToJson(Summarize(std::move(lat_us)));
  }

  // O(1) count: microseconds regardless of n (the legacy walk is O(n)).
  {
    auto start = Clock::now();
    std::uint64_t total = 0;
    for (int i = 0; i < 1024; ++i) {
      total += fx.mv->index_count();
    }
    row["count_ops_s"] = json::Value(1024.0 / SecondsSince(start));
    if (total != static_cast<std::uint64_t>(n) * 1024) {
      failures->push_back("scale index_count mismatch");
    }
  }

  const auto store = fx.mv->store_stats();
  row["segment_count"] =
      json::Value(static_cast<std::int64_t>(store.segment_count));
  row["segment_bytes"] =
      json::Value(static_cast<std::int64_t>(store.segment_bytes));
  row["memtable_bytes"] =
      json::Value(static_cast<std::int64_t>(store.memtable_bytes));
  row["memtable_flushes"] =
      json::Value(static_cast<std::int64_t>(store.memtable_flushes));
  row["compactions"] =
      json::Value(static_cast<std::int64_t>(store.compactions));
  row["wal_batches"] =
      json::Value(static_cast<std::int64_t>(store.wal.batches_committed));
  row["wal_records"] =
      json::Value(static_cast<std::int64_t>(store.wal.records_appended));

  const std::uint64_t rss_after = CurrentRssBytes();
  const double rss_per_entry =
      n > 0 ? static_cast<double>(rss_after - rss_before) /
                  static_cast<double>(n)
            : 0.0;
  row["rss_mb"] = json::Value(static_cast<double>(rss_after) / (1 << 20));
  row["rss_bytes_per_entry"] = json::Value(rss_per_entry);
  // Keydir + keys + simulated device bytes + transient memtable. 4 KiB per
  // entry would mean something is retaining whole generations; the real
  // footprint is a few hundred bytes.
  if (rss_before > 0 && rss_per_entry > 4096.0) {
    failures->push_back("scale RSS gate: " + std::to_string(rss_per_entry) +
                        " bytes/entry at n=" + std::to_string(n));
  }
  // The active memtable must stay bounded by the flush threshold plus one
  // frozen generation regardless of n.
  if (store.memtable_bytes > 2 * 8 * kMiB) {
    failures->push_back("scale memtable unbounded: " +
                        std::to_string(store.memtable_bytes) + " bytes");
  }

  // Crash-replay the whole store: everything above was acked, so the
  // re-attached store must recover every entry. Replay is near-linear in
  // the store's byte size (segments stream + WAL tail).
  {
    fx.Reattach(LsOptions(olfs::MetadataVolume::kDefaultCacheCapacity));
    const sim::TimePoint sim_start = fx.sim.now();
    auto start = Clock::now();
    Status opened = fx.sim.RunUntilComplete(fx.mv->Open());
    if (!opened.ok()) {
      failures->push_back("scale recovery failed: " + opened.ToString());
      return json::Value(std::move(row));
    }
    row["recovery_host_s"] = json::Value(SecondsSince(start));
    row["recovery_sim_s"] =
        json::Value(sim::ToSeconds(fx.sim.now() - sim_start));
    const auto recovered = fx.mv->store_stats();
    row["recovered_segments"] =
        json::Value(static_cast<std::int64_t>(recovered.recovered_segments));
    row["replayed_wal_records"] = json::Value(
        static_cast<std::int64_t>(recovered.replayed_wal_records));
    if (fx.mv->index_count() != n) {
      failures->push_back(
          "scale recovery lost entries: " +
          std::to_string(fx.mv->index_count()) + " of " + std::to_string(n));
    }
  }
  return json::Value(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool large = false;
  bool scale = false;
  bool scale_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--large") == 0) {
      large = true;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale = true;
    } else if (std::strcmp(argv[i], "--scale-smoke") == 0) {
      scale_smoke = true;
    }
  }

  std::vector<std::string> failures;
  json::Object doc;
  doc["bench"] = json::Value("mv_hotpath");

  if (scale || scale_smoke) {
    // LS-only scale mode (the legacy backend at 10M would dominate the run
    // for no new information; its curve is in the comparison section).
    std::vector<std::size_t> sizes =
        scale_smoke ? std::vector<std::size_t>{1'000'000}
                    : std::vector<std::size_t>{1'000'000, 10'000'000};
    json::Array rows;
    for (const std::size_t n : sizes) {
      rows.push_back(RunScale(n, &failures));
    }
    doc["scale"] = json::Value(std::move(rows));
    // Quick backend differential keeps the ASan CI job honest about
    // correctness, not just throughput.
    const std::vector<std::string> diff =
        RunBackendDifferential(/*seed=*/0xd1ffu, 200);
    failures.insert(failures.end(), diff.begin(), diff.end());
  } else {
    std::vector<std::size_t> sizes;
    if (smoke) {
      sizes = {1000};
    } else {
      sizes = {10'000, 100'000};
      if (large) {
        sizes.push_back(1'000'000);
      }
    }
    const std::size_t stat_sample = smoke ? 256 : 2048;
    const int stat_rounds = smoke ? 4 : 8;
    const int readdir_calls = smoke ? 16 : 64;
    const int count_calls = smoke ? 4 : 16;

    json::Array size_results;
    for (const std::size_t n : sizes) {
      const BackendRun legacy =
          MeasureBackend(false, n, stat_sample, stat_rounds, readdir_calls,
                         count_calls);
      const BackendRun ls = MeasureBackend(
          true, n, stat_sample, stat_rounds, readdir_calls, count_calls);
      if (!legacy.ok || !ls.ok) {
        return 1;
      }

      OpResult create{.op = "create",
                      .baseline_ops_s = legacy.create_ops_s,
                      .fast_ops_s = ls.create_ops_s,
                      .baseline_sim_s = legacy.create_sim_s,
                      .fast_sim_s = ls.create_sim_s};
      OpResult stat{.op = "stat",
                    .baseline_ops_s = legacy.stat_ops_s,
                    .fast_ops_s = ls.stat_ops_s,
                    .baseline_sim_s = legacy.stat_sim_s,
                    .fast_sim_s = ls.stat_sim_s};
      OpResult readdir{.op = "readdir",
                       .baseline_ops_s = legacy.readdir_ops_s,
                       .fast_ops_s = ls.readdir_ops_s};
      OpResult count{.op = "index_count",
                     .baseline_ops_s = legacy.count_ops_s,
                     .fast_ops_s = ls.count_ops_s};

      json::Object row;
      row["entries"] = json::Value(static_cast<std::int64_t>(n));
      json::Array ops;
      for (const OpResult& r : {create, stat, readdir, count}) {
        ops.push_back(ToJson(r));
      }
      row["ops"] = json::Value(std::move(ops));
      row["create_latency_legacy"] = ToJson(legacy.create_lat);
      row["create_latency_ls"] = ToJson(ls.create_lat);
      row["stat_latency_ls"] = ToJson(ls.stat_lat);
      row["snapshot_build_entries_s_legacy"] =
          json::Value(legacy.snapshot_entries_s);
      row["snapshot_build_entries_s_ls"] =
          json::Value(ls.snapshot_entries_s);
      json::Object cache;
      cache["hits"] =
          json::Value(static_cast<std::int64_t>(ls.cache.hits));
      cache["misses"] =
          json::Value(static_cast<std::int64_t>(ls.cache.misses));
      cache["evictions"] =
          json::Value(static_cast<std::int64_t>(ls.cache.evictions));
      row["cache"] = json::Value(std::move(cache));
      json::Object store;
      store["wal_batches"] = json::Value(
          static_cast<std::int64_t>(ls.store.wal.batches_committed));
      store["wal_records"] = json::Value(
          static_cast<std::int64_t>(ls.store.wal.records_appended));
      store["segment_count"] =
          json::Value(static_cast<std::int64_t>(ls.store.segment_count));
      store["memtable_flushes"] =
          json::Value(static_cast<std::int64_t>(ls.store.memtable_flushes));
      store["compactions"] =
          json::Value(static_cast<std::int64_t>(ls.store.compactions));
      row["ls_store"] = json::Value(std::move(store));
      size_results.push_back(json::Value(std::move(row)));

      // The tentpole gate, on the deterministic number: at 1M entries the
      // group-committed create must beat the per-file backend by >= 5x in
      // simulated time.
      if (n >= 1'000'000 && ls.create_sim_s > 0 &&
          legacy.create_sim_s / ls.create_sim_s < 5.0) {
        failures.push_back(
            "create sim-speedup below 5x at 1M: " +
            std::to_string(legacy.create_sim_s / ls.create_sim_s));
      }
    }
    doc["results"] = json::Value(std::move(size_results));

    for (const bool ls : {false, true}) {
      const std::vector<std::string> diff =
          RunDifferential(/*seed=*/0x5eedu, smoke ? 200 : 600, ls);
      failures.insert(failures.end(), diff.begin(), diff.end());
    }
    const std::vector<std::string> backend_diff =
        RunBackendDifferential(/*seed=*/0xd1ffu, smoke ? 200 : 600);
    failures.insert(failures.end(), backend_diff.begin(), backend_diff.end());
  }

  for (const std::string& f : failures) {
    std::fprintf(stderr, "mv_hotpath failure: %s\n", f.c_str());
  }
  doc["differential_identical"] = json::Value(failures.empty());
  std::printf("%s\n", json::Value(std::move(doc)).DumpPretty().c_str());
  return failures.empty() ? 0 : 1;
}
