// Reproduces Figure 7 (§5.3): the internal-operation breakdown and average
// latency of OLFS file writes and reads, with and without Samba, measured
// the paper's way (1 KB files, direct I/O, 50 repetitions).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/frontend/stack.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

using namespace ros;
using namespace ros::olfs;
using frontend::FrontendStack;
using frontend::StackConfig;

namespace {

void PrintTrace(const char* label,
                const std::vector<std::string>& trace) {
  std::printf("  %-22s:", label);
  for (const std::string& op : trace) {
    std::printf(" %s", op.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  sim::Simulator sim;
  SystemConfig config = TestSystemConfig();
  config.hdds_per_volume = 7;
  config.hdd_capacity = 8 * kGiB;
  RosSystem system(sim, config);
  OlfsParams params;
  params.disc_capacity_override = 1 * kGiB;
  Olfs olfs(sim, &system, params);

  constexpr int kReps = 50;

  FrontendStack plain(sim, StackConfig::kExt4Olfs, nullptr, &olfs);
  FrontendStack samba(sim, StackConfig::kSambaOlfs, nullptr, &olfs);

  double write_ms = 0;
  double read_ms = 0;
  std::vector<std::string> write_trace;
  std::vector<std::string> read_trace;
  for (int i = 0; i < kReps; ++i) {
    const std::string path = "/fig7/plain" + std::to_string(i);
    auto w = sim.RunUntilComplete(plain.TimedCreate(path, 1 * kKiB));
    ROS_CHECK(w.ok());
    write_ms += sim::ToMillis(*w);
    write_trace = plain.last_op_trace();
    auto r = sim.RunUntilComplete(plain.TimedRead(path, 1 * kKiB));
    ROS_CHECK(r.ok());
    read_ms += sim::ToMillis(*r);
    read_trace = plain.last_op_trace();
  }

  double samba_write_ms = 0;
  double samba_read_ms = 0;
  std::vector<std::string> samba_write_trace;
  for (int i = 0; i < kReps; ++i) {
    const std::string path = "/fig7/samba" + std::to_string(i);
    auto w = sim.RunUntilComplete(samba.TimedCreate(path, 1 * kKiB));
    ROS_CHECK(w.ok());
    samba_write_ms += sim::ToMillis(*w);
    samba_write_trace = samba.last_op_trace();
    auto r = sim.RunUntilComplete(samba.TimedRead(path, 1 * kKiB));
    ROS_CHECK(r.ok());
    samba_read_ms += sim::ToMillis(*r);
  }

  bench::PrintHeader("Figure 7: OLFS internal operations per PI call");
  PrintTrace("OLFS write", write_trace);
  PrintTrace("OLFS read", read_trace);
  PrintTrace("samba+OLFS write", samba_write_trace);

  bench::PrintHeader("Figure 7: average latency over 50 ops (ms)");
  bench::PrintRow("OLFS file write (ext4+OLFS)", 16.0, write_ms / kReps,
                  "ms");
  bench::PrintRow("OLFS file read (ext4+OLFS)", 9.0, read_ms / kReps, "ms");
  bench::PrintRow("samba+OLFS file write", 53.0, samba_write_ms / kReps,
                  "ms");
  bench::PrintRow("samba+OLFS file read", 15.0, samba_read_ms / kReps,
                  "ms");
  bench::PrintNote(
      "each internal op averages ~2.5 ms incl. direct I/O, plus kernel-user "
      "mode switches between ops (§5.3)");
  return 0;
}
