// Reproduces Figure 6 (§5.3): filebench singlestream throughput of the
// five software-stack configurations, normalized to raw ext4 on one
// RAID-5 volume.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/frontend/stack.h"
#include "src/olfs/olfs.h"
#include "src/workload/filebench.h"

using namespace ros;
using namespace ros::olfs;
using frontend::FrontendStack;
using frontend::StackConfig;
using frontend::StackConfigName;

namespace {

struct Rig {
  Rig() {
    SystemConfig config;
    config.rollers = 1;
    config.drive_sets = 1;
    config.data_volumes = 2;
    config.hdds_per_volume = 7;  // the paper's RAID-5 volume
    config.hdd_capacity = 16 * kGiB;
    system = std::make_unique<RosSystem>(sim, config);
    OlfsParams params;
    params.disc_capacity_override = 4 * kGiB;
    olfs = std::make_unique<Olfs>(sim, system.get(), params);
  }

  double Write(StackConfig config, const std::string& path) {
    FrontendStack stack(sim, config, system->data_volumes()[0], olfs.get());
    auto result = sim.RunUntilComplete(
        workload::SinglestreamWrite(sim, stack, path, kStream));
    ROS_CHECK(result.ok());
    return result->bytes_per_sec();
  }

  double Read(StackConfig config, const std::string& path) {
    FrontendStack stack(sim, config, system->data_volumes()[0], olfs.get());
    auto result = sim.RunUntilComplete(
        workload::SinglestreamRead(sim, stack, path, kStream));
    ROS_CHECK(result.ok());
    return result->bytes_per_sec();
  }

  static constexpr std::uint64_t kStream = 1 * kGB;

  sim::Simulator sim;
  std::unique_ptr<RosSystem> system;
  std::unique_ptr<Olfs> olfs;
};

}  // namespace

int main() {
  Rig rig;
  struct Row {
    StackConfig config;
    double paper_read_norm;   // Fig 6 (−1 = not separately reported)
    double paper_write_norm;
  };
  const Row rows[] = {
      {StackConfig::kExt4, 1.000, 1.000},
      {StackConfig::kExt4Fuse, 0.759, 0.482},
      {StackConfig::kExt4Olfs, 0.540, 0.433},
      {StackConfig::kSamba, 0.311, 0.320},
      {StackConfig::kSambaFuse, -1, -1},
      {StackConfig::kSambaOlfs, 0.269, 0.236},
  };

  // Measure ext4 first to normalize.
  double base_write = 0;
  double base_read = 0;

  bench::PrintHeader(
      "Figure 6: singlestream throughput by stack (normalized to ext4)");
  for (const Row& row : rows) {
    const std::string name(StackConfigName(row.config));
    const double write = rig.Write(row.config, "/fig6/w-" + name);
    const double read = rig.Read(row.config, "/fig6/w-" + name);
    if (row.config == StackConfig::kExt4) {
      base_write = write;
      base_read = read;
      std::printf("  baseline ext4: read %.0f MB/s, write %.0f MB/s "
                  "(paper: 1200 / 1000)\n",
                  read / 1e6, write / 1e6);
    }
    if (row.paper_read_norm >= 0) {
      bench::PrintRow(name + " read (normalized)", row.paper_read_norm,
                      read / base_read, "");
      bench::PrintRow(name + " write (normalized)", row.paper_write_norm,
                      write / base_write, "");
    } else {
      std::printf("  %-46s paper   (curve)        measured %10.3f / %.3f\n",
                  (name + " read/write (normalized)").c_str(),
                  read / base_read, write / base_write);
    }
  }
  std::printf(
      "\n  samba+OLFS absolute: read %.1f MB/s (paper 323.6), "
      "write %.1f MB/s (paper 236.1)\n",
      rig.Read(StackConfig::kSambaOlfs, "/fig6/w-samba+OLFS") / 1e6,
      rig.Write(StackConfig::kSambaOlfs, "/fig6/abs") / 1e6);
  bench::PrintNote(
      "§5.3's prose swaps samba+OLFS read/write; the abstract's R323/W236 "
      "is the consistent reading");
  return 0;
}
