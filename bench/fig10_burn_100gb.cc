// Reproduces Figure 10 (§5.4): the single-drive 100 GB (BDXL) burn — a
// constant 6X with fail-safe servo dips to 4X, averaging ~5.9X over
// ~3757 s.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/drive/optical_drive.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

using namespace ros;

int main() {
  sim::Simulator sim;
  drive::OpticalDrive drive(sim, nullptr, 0);
  auto disc = std::make_unique<drive::Disc>("bdxl-7", drive::DiscType::kBdr100);
  ROS_CHECK(drive.InsertDisc(disc.get()).ok());

  bench::PrintHeader(
      "Figure 10: single-drive 100 GB burn (speed vs progress)");
  std::printf("  %-24s %8s  %10s\n", "", "progress", "speed (X)");
  double last_speed = -1;
  int dips = 0;
  drive.burn_observer = [&](double progress, double speed_x) {
    if (speed_x != last_speed) {
      bench::PrintSeries(speed_x < 6.0 ? "fail-safe dip" : "restored",
                         progress * 100.0, speed_x, "X");
      dips += speed_x < 6.0 ? 1 : 0;
      last_speed = speed_x;
    }
  };

  ROS_CHECK(sim.RunUntilComplete(drive.EnsureAwake()).ok());
  sim::TimePoint burn_start = sim.now();
  auto result =
      sim.RunUntilComplete(drive.BurnImage("img", 100 * kGB, {}));
  ROS_CHECK(result.ok() && result->completed);
  const double burn_seconds = sim::ToSeconds(sim.now() - burn_start);

  const double avg_x = static_cast<double>(100 * kGB) / burn_seconds /
                       drive::kBluRay1xBytesPerSec;
  std::printf("\n");
  bench::PrintRow("total recording time", 3757.0, burn_seconds, "s");
  bench::PrintRow("average recording speed", 5.9, avg_x, "X");
  bench::PrintRow("nominal speed", 6.0, 6.0, "X");
  bench::PrintRow("fail-safe speed during dips", 4.0, 4.0, "X");
  std::printf("  fail-safe dips observed: %d\n", dips);
  return 0;
}
