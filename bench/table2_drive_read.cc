// Reproduces Table 2 (§5.4): single-drive and 12-drive aggregate optical
// read speeds for 25 GB and 100 GB media.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/drive/optical_drive.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

using namespace ros;

namespace {

struct Result {
  double single_mb;
  double aggregate_mb;
};

Result Measure(drive::DiscType type) {
  const std::uint64_t bytes = 64 * kMB;
  Result result{};

  {
    // Single drive.
    sim::Simulator sim;
    drive::OpticalDrive single(sim, nullptr, 0);
    auto disc = std::make_unique<drive::Disc>("d", type);
    ROS_CHECK(disc->AppendSession("img", bytes, {}, true).ok());
    ROS_CHECK(single.InsertDisc(disc.get()).ok());
    ROS_CHECK(sim.RunUntilComplete(single.MountVfs()).ok());
    sim::TimePoint t0 = sim.now();
    ROS_CHECK(sim.RunUntilComplete(single.Read("img", 0, bytes)).ok());
    result.single_mb = BytesToMB(bytes) / sim::ToSeconds(sim.now() - t0);
  }
  {
    // 12 drives in one set, reading concurrently.
    sim::Simulator sim;
    drive::DriveSet set(sim, 0);
    std::vector<std::unique_ptr<drive::Disc>> discs;
    for (int i = 0; i < set.size(); ++i) {
      discs.push_back(
          std::make_unique<drive::Disc>("d" + std::to_string(i), type));
      ROS_CHECK(discs.back()->AppendSession("img", bytes, {}, true).ok());
      ROS_CHECK(set.drive(i).InsertDisc(discs.back().get()).ok());
      ROS_CHECK(sim.RunUntilComplete(set.drive(i).MountVfs()).ok());
    }
    sim::TimePoint t0 = sim.now();
    for (int i = 0; i < set.size(); ++i) {
      sim.Spawn([](drive::OpticalDrive* d,
                   std::uint64_t n) -> sim::Task<void> {
        auto r = co_await d->Read("img", 0, n);
        ROS_CHECK(r.ok());
      }(&set.drive(i), bytes));
    }
    sim.Run();
    result.aggregate_mb =
        12.0 * BytesToMB(bytes) / sim::ToSeconds(sim.now() - t0);
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 2: optical drive read speeds (MB/s)");
  Result r25 = Measure(drive::DiscType::kBdr25);
  bench::PrintRow("25 GB disc, single drive", 24.1, r25.single_mb, "MB/s");
  bench::PrintRow("25 GB disc, 12-drive aggregate", 282.5, r25.aggregate_mb,
                  "MB/s");
  Result r100 = Measure(drive::DiscType::kBdr100);
  bench::PrintRow("100 GB disc, single drive", 18.0, r100.single_mb, "MB/s");
  bench::PrintRow("100 GB disc, 12-drive aggregate", 210.2,
                  r100.aggregate_mb, "MB/s");
  bench::PrintNote(
      "aggregate is slightly below 12x single due to shared-HBA contention");
  return 0;
}
