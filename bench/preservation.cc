// Decades-scale preservation sweep (DESIGN.md §5j): media aging × scrub
// policy × EC layout over 30 simulated years.
//
// Every config builds a fresh rack with the deterministic media-aging
// model enabled, writes the same acked file set, then lives through the
// decades in scrub-interval steps. Configs with scrubbing run a
// ScrubManager pass each interval (background-class fetches, parity
// repair, refresh burns per policy); configs without scrubbing just age.
// At the end-of-life read-back, survival is the fraction of acked files
// that still read back byte-identical (degraded reads through parity
// count — that is the point of the EC layout).
//
// The audit phase then certifies what survival alone cannot: a sampled
// Merkle audit over the persisted manifests, followed by *silent*
// tampering (bit flips that read back without any error) of selected
// members, which the auditor must provably detect while reading only a
// small fraction of the stored bytes.
//
// Prints one JSON document (committed as BENCH_PRESERVE.json) and exits
// non-zero when a gate fails:
//   - archival config (RAID-6 + scrub + refresh + generation migration):
//     every acked byte survives 30 years;
//   - no-scrub baseline: measurable loss (aging wins without scrubbing);
//   - the audit detects every tampered member reading < 5% of the bytes.
//
// Flags: --smoke (shorter horizon, hotter aging, CI-sized) and
// --replay-check (every config runs twice under the sim::EventHasher
// divergence oracle — aging draws included — and must replay exactly).
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/olfs/olfs.h"
#include "src/sim/event_hasher.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;

constexpr std::int64_t kYearNs = 365LL * 24 * 3600 * 1000000000LL;

struct Options {
  bool smoke = false;
  bool replay_check = false;
};

// One cell of the policy × layout sweep.
struct Config {
  const char* name;
  int parity_images;        // 1 = RAID-5, 2 = RAID-6
  bool scrub;               // periodic scrub passes
  bool refresh;             // damaged/aged arrays re-burned onto fresh media
  bool migrate;             // first refresh switches media generation
  double refresh_age_years; // 0 = only damage triggers refresh
};

constexpr Config kConfigs[] = {
    {"none-raid5", 1, false, false, false, 0.0},
    {"none-raid6", 2, false, false, false, 0.0},
    {"repair-raid5", 1, true, false, false, 0.0},
    {"repair-raid6", 2, true, false, false, 0.0},
    {"refresh-raid5", 1, true, true, false, 0.0},
    {"archival", 2, true, true, true, 8.0},
};

struct ConfigResult {
  json::Object row;
  double survival = 0.0;
  bool tamper_all_detected = false;
  double audit_fraction = 1.0;
};

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

// Modeled blank-media unit cost (USD per disc), for the TCO row: refresh
// burns consume media, and migration trades more expensive discs for a
// slower rot factor.
double DiscCostUsd(drive::DiscType type) {
  switch (type) {
    case drive::DiscType::kBdr25:
      return 1.4;
    case drive::DiscType::kBdr100:
      return 4.5;
    case drive::DiscType::kBdre25:
      return 3.0;
  }
  return 1.4;
}

OlfsParams MakeParams(const Config& cfg, bool smoke) {
  OlfsParams params;
  params.disc_type = drive::DiscType::kBdr25;
  params.disc_capacity_override = 16 * kMiB;
  params.read_cache_bytes = 0;  // every read exercises the optical path
  params.parity_images = cfg.parity_images;
  params.scrub_refresh_enabled = cfg.refresh;
  params.refresh_age_years = cfg.refresh ? cfg.refresh_age_years : 0.0;
  params.generation_migration_enabled = cfg.migrate;
  params.migration_disc_type = drive::DiscType::kBdr100;
  params.audit_leaf_bytes = 4 * kKiB;

  // Aging intensity expressed as expected latent errors per burned disc
  // per year (on young media). AdvanceAging draws per *burned* sector and
  // each array member holds one flush group of ~132 KiB files, so
  // normalize by that footprint, not the mostly-blank disc capacity. The
  // smoke run compresses decades of rot into its short horizon.
  params.media_aging.enabled = true;
  const double group = smoke ? 3.0 : 4.0;
  const double burned_sectors =
      group * 132.0 * kKiB / static_cast<double>(drive::kSectorSize);
  const double lambda_per_disc_year = smoke ? 0.5 : 0.05;
  params.media_aging.lse_per_sector_year =
      lambda_per_disc_year / burned_sectors;
  params.media_aging.growth_per_year = 0.08;
  params.media_aging.seed = 424242;
  return params;
}

// Runs one config through the decades. Returns false only on a harness
// error (pipeline failure, audit machinery broken) — data loss is a
// *result*, reported in `out`, not a failure of the run.
bool RunConfig(const Config& cfg, const Options& opt, ConfigResult* out,
               sim::EventHasher* hasher = nullptr) {
  auto fail = [&cfg](const std::string& what) {
    std::fprintf(stderr, "PRESERVE HARNESS ERROR (%s): %s\n", cfg.name,
                 what.c_str());
    return false;
  };

  const int years = opt.smoke ? 8 : 30;
  const sim::Duration scrub_interval = Seconds(60.0 * 24 * 3600);
  const int files = opt.smoke ? 6 : 12;
  const int flush_group = opt.smoke ? 3 : 4;

  sim::Simulator sim;
  sim.set_event_hasher(hasher);
  RosSystem system(sim, TestSystemConfig());
  const OlfsParams params = MakeParams(cfg, opt.smoke);
  auto olfs = std::make_unique<Olfs>(sim, &system, params);
  olfs->burns().burn_start_interval = Seconds(1);

  // Acked data, flushed in groups so the rack holds several arrays.
  std::map<std::string, std::vector<std::uint8_t>> acked;
  for (int i = 0; i < files; ++i) {
    const std::string path = "/vault/f" + std::to_string(i);
    auto payload = RandomBytes(128 * kKiB + i * 1024, 9000 + i);
    Status created = sim.RunUntilComplete(
        olfs->Create(path, payload, payload.size()));
    if (!created.ok()) {
      return fail("write not acked: " + created.ToString());
    }
    acked[path] = std::move(payload);
    if ((i + 1) % flush_group == 0 || i + 1 == files) {
      Status drained = sim.RunUntilComplete(olfs->FlushAndDrain());
      if (!drained.ok()) {
        return fail("burn pipeline: " + drained.ToString());
      }
    }
  }
  const std::size_t initial_discs = olfs->images().BurnedImages().size();

  // The decades: age in scrub-interval steps; scrubbing configs run a
  // pass per step (repair + refresh per policy), the baseline just rots.
  const std::int64_t horizon_ns = static_cast<std::int64_t>(years) * kYearNs;
  std::int64_t lived_ns = 0;
  int scrub_failures = 0;
  while (lived_ns < horizon_ns) {
    sim.RunFor(scrub_interval);
    lived_ns += scrub_interval;
    if (cfg.scrub) {
      auto pass = sim.RunUntilComplete(olfs->scrub().RunPass());
      if (!pass.ok()) {
        // An unrecoverable array mid-pass is a preservation outcome, not
        // a harness bug; count it and keep living.
        ++scrub_failures;
      }
    }
  }

  // End-of-life read-back: survival of every acked byte.
  int survived = 0;
  for (const auto& [path, expect] : acked) {
    auto data = sim.RunUntilComplete(olfs->Read(path, 0, expect.size()));
    if (data.ok() && *data == expect) {
      ++survived;
    }
  }
  out->survival = static_cast<double>(survived) / acked.size();

  // --- audit phase ---
  // A sampled audit of the (possibly refreshed) manifests, then silent
  // tampering of every third member, which the auditor must detect.
  const double sample_fraction = 0.04;
  auto clean = sim.RunUntilComplete(
      olfs->scrub().RunAudit(sample_fraction, /*seed=*/7));
  if (!clean.ok()) {
    return fail("clean audit: " + clean.status().ToString());
  }
  auto manifests = sim.RunUntilComplete(olfs->audit().LoadManifests());
  if (!manifests.ok()) {
    return fail("manifest load: " + manifests.status().ToString());
  }
  std::vector<std::string> victims;
  std::size_t member_index = 0;
  for (const AuditManifest& manifest : *manifests) {
    for (const AuditMember& member : manifest.members) {
      const bool chosen =
          member_index++ % 3 == 0 && member.stream_bytes > 0;
      if (!chosen) {
        continue;
      }
      auto record = olfs->images().Lookup(member.image_id);
      if (!record.ok() || !(*record)->disc.has_value()) {
        continue;  // lost media cannot be tampered with
      }
      drive::Disc* disc = olfs->mech().DiscAt(*(*record)->disc);
      // Flip one bit in every leaf-sized chunk, so any sampled leaf of
      // this member betrays the tampering. The flips are silent: reads
      // return the modified bytes without any error.
      bool tampered = false;
      for (std::uint64_t off = 0; off < member.stream_bytes;
           off += manifest.leaf_bytes) {
        tampered |=
            disc->TamperSessionData(member.image_id, off, 0x01).ok();
      }
      if (tampered) {
        victims.push_back(member.image_id);
      }
    }
  }
  auto caught = sim.RunUntilComplete(
      olfs->scrub().RunAudit(sample_fraction, /*seed=*/11));
  if (!caught.ok()) {
    return fail("tamper audit: " + caught.status().ToString());
  }
  const std::set<std::string> flagged(caught->damaged.begin(),
                                      caught->damaged.end());
  int victims_detected = 0;
  for (const std::string& victim : victims) {
    if (flagged.count(victim) > 0) {
      ++victims_detected;
    }
  }
  out->tamper_all_detected =
      !victims.empty() &&
      victims_detected == static_cast<int>(victims.size());
  out->audit_fraction =
      caught->stored_bytes > 0
          ? static_cast<double>(caught->bytes_read) / caught->stored_bytes
          : 1.0;

  // TCO: initial media plus every refresh burn at the generation the rack
  // had migrated to by then.
  const double media_usd =
      static_cast<double>(initial_discs) *
          DiscCostUsd(drive::DiscType::kBdr25) +
      static_cast<double>(olfs->scrub().refresh_burns()) *
          DiscCostUsd(olfs->mech().media_type());

  json::Object row;
  row["config"] = json::Value(cfg.name);
  row["parity_images"] = json::Value(static_cast<std::int64_t>(cfg.parity_images));
  row["scrub"] = json::Value(cfg.scrub);
  row["refresh"] = json::Value(cfg.refresh);
  row["migrate"] = json::Value(cfg.migrate);
  row["sim_years"] = json::Value(static_cast<std::int64_t>(years));
  row["files_acked"] = json::Value(static_cast<std::int64_t>(acked.size()));
  row["files_survived"] = json::Value(static_cast<std::int64_t>(survived));
  row["survival"] = json::Value(out->survival);
  row["scrub_passes"] =
      json::Value(static_cast<std::int64_t>(olfs->scrub().passes()));
  row["scrub_failures"] = json::Value(static_cast<std::int64_t>(scrub_failures));
  row["scrubbed_bytes"] =
      json::Value(static_cast<std::int64_t>(olfs->scrub().scrubbed_bytes()));
  row["scrub_repairs"] =
      json::Value(static_cast<std::int64_t>(olfs->scrub().scrub_repairs()));
  row["arrays_refreshed"] =
      json::Value(static_cast<std::int64_t>(olfs->scrub().arrays_refreshed()));
  row["refresh_burns"] =
      json::Value(static_cast<std::int64_t>(olfs->scrub().refresh_burns()));
  row["degraded_reads"] =
      json::Value(static_cast<std::int64_t>(olfs->degraded_reads()));
  row["reconstructions"] =
      json::Value(static_cast<std::int64_t>(olfs->reconstructions()));
  row["end_media_type"] = json::Value(
      olfs->mech().media_type() == drive::DiscType::kBdr100 ? "bdr100"
                                                            : "bdr25");
  json::Object audit;
  audit["clean_mismatches"] =
      json::Value(static_cast<std::int64_t>(clean->mismatches));
  audit["manifests"] = json::Value(static_cast<std::int64_t>(caught->manifests));
  audit["tamper_victims"] =
      json::Value(static_cast<std::int64_t>(victims.size()));
  audit["tamper_detected"] =
      json::Value(static_cast<std::int64_t>(victims_detected));
  audit["leaves_sampled"] =
      json::Value(static_cast<std::int64_t>(caught->leaves_sampled));
  audit["bytes_read"] =
      json::Value(static_cast<std::int64_t>(caught->bytes_read));
  audit["stored_bytes"] =
      json::Value(static_cast<std::int64_t>(caught->stored_bytes));
  audit["read_fraction"] = json::Value(out->audit_fraction);
  row["audit"] = json::Value(std::move(audit));
  json::Object tco;
  tco["initial_discs"] = json::Value(static_cast<std::int64_t>(initial_discs));
  tco["refresh_burns"] =
      json::Value(static_cast<std::int64_t>(olfs->scrub().refresh_burns()));
  tco["media_usd"] = json::Value(media_usd);
  row["tco"] = json::Value(std::move(tco));
  out->row = std::move(row);

  sim.Shutdown();
  return true;
}

// Double-runs one config under the divergence oracle: the second run must
// replay the first's event stream — aging draws, scrub passes, audits and
// all — fold for fold.
bool ReplayCheckConfig(const Config& cfg, const Options& opt) {
  sim::EventHasher record;
  ConfigResult first;
  if (!RunConfig(cfg, opt, &first, &record)) {
    return false;
  }
  sim::EventHasher check(record.trail());
  ConfigResult second;
  const bool ok = RunConfig(cfg, opt, &second, &check);
  check.Finish();
  if (check.diverged()) {
    const sim::EventHasher::Divergence& div = *check.divergence();
    std::fprintf(stderr,
                 "REPLAY DIVERGENCE (%s): event #%llu: %s\n", cfg.name,
                 static_cast<unsigned long long>(div.index),
                 div.description.c_str());
    return false;
  }
  if (!ok || first.survival != second.survival) {
    return false;
  }
  std::printf("{\"config\": \"%s\", \"replay_events\": %llu, "
              "\"replay_digest\": \"%016llx\"}\n",
              cfg.name,
              static_cast<unsigned long long>(check.event_count()),
              static_cast<unsigned long long>(check.digest()));
  return true;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--replay-check") == 0) {
      opt.replay_check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--replay-check]\n",
                   argv[0]);
      return 2;
    }
  }

  if (opt.replay_check) {
    int failures = 0;
    for (const Config& cfg : kConfigs) {
      if (!ReplayCheckConfig(cfg, opt)) {
        ++failures;
      }
    }
    if (failures > 0) {
      std::fprintf(stderr, "%d configs diverged or failed\n", failures);
      return 1;
    }
    std::printf("all %zu configs replayed deterministically\n",
                std::size(kConfigs));
    return 0;
  }

  json::Array rows;
  std::map<std::string, ConfigResult> results;
  for (const Config& cfg : kConfigs) {
    ConfigResult result;
    if (!RunConfig(cfg, opt, &result)) {
      return 1;
    }
    rows.push_back(json::Value(std::move(result.row)));
    results[cfg.name] = std::move(result);
  }

  // Gates (the acceptance bar, checked on the committed full run and the
  // CI smoke alike).
  const ConfigResult& archival = results["archival"];
  const ConfigResult& baseline = results["none-raid5"];
  const bool archival_survives = archival.survival == 1.0;
  const bool baseline_loses = baseline.survival < 1.0;
  const bool tamper_detected = archival.tamper_all_detected;
  const bool audit_cheap = archival.audit_fraction < 0.05;
  const bool pass =
      archival_survives && baseline_loses && tamper_detected && audit_cheap;

  json::Object gates;
  gates["archival_full_survival"] = json::Value(archival_survives);
  gates["no_scrub_measurable_loss"] = json::Value(baseline_loses);
  gates["tampering_always_detected"] = json::Value(tamper_detected);
  gates["audit_reads_under_5pct"] = json::Value(audit_cheap);

  json::Object doc;
  doc["bench"] = json::Value("preservation");
  doc["mode"] = json::Value(opt.smoke ? "smoke" : "full");
  doc["pass"] = json::Value(pass);
  doc["gates"] = json::Value(std::move(gates));
  doc["rows"] = json::Value(std::move(rows));
  std::printf("%s\n", json::Value(std::move(doc)).DumpPretty().c_str());
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace ros::olfs

int main(int argc, char** argv) { return ros::olfs::Main(argc, argv); }
