// Chaos harness: seeded fault storms against the full OLFS stack.
//
// For every seed the harness builds a fresh rack, installs a FaultInjector
// mixing scripted one-shots with background fault rates, runs a write /
// flush / read-back / scrub / rebuild workload and checks the §4.7
// self-healing invariants:
//
//   * every acked write reads back byte-identical (degraded reads count
//     as success — that is the point of the parity path);
//   * the burn pipeline drains without a fatal error;
//   * after the storm, RebuildNamespace recovers every file from the
//     surviving discs;
//   * speculative tray loads enqueued against the storm never evict a
//     tray with queued demand and the scheduler queue drains.
//
// Prints one JSON line of telemetry per seed and exits non-zero (printing
// the offending seed) on the first violated invariant, so a CI job can
// sweep seeds cheaply:  chaos_harness --seeds=1,2,3,4,5
//
// --replay-check additionally runs every seed TWICE with a
// sim::EventHasher installed: the first run records the event-stream
// digest trail, the second verifies against it fold by fold. Any
// divergence — a wall-clock read, unordered-container iteration, or
// pointer-order dependence sneaking into the model — fails the seed and
// names the first divergent event.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/olfs/olfs.h"
#include "src/sim/event_hasher.h"
#include "src/sim/fault.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::FaultKind;
using sim::Seconds;

struct Options {
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  int files = 6;
  double latent_rate = 0.002;
  double mech_rate = 0.002;
  bool replay_check = false;
};

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

OlfsParams ChaosParams() {
  OlfsParams params;
  params.disc_type = drive::DiscType::kBdr25;
  params.disc_capacity_override = 16 * kMiB;
  params.read_cache_bytes = 0;  // every read exercises the optical path
  return params;
}

// Returns true when the seed's run upholds every invariant. With a
// non-null `hasher` the run folds its event stream into it; `quiet`
// suppresses the per-seed JSON line (used for replay-check second runs,
// which would otherwise print the same telemetry twice).
bool RunSeed(std::uint64_t seed, const Options& opt,
             sim::EventHasher* hasher = nullptr, bool quiet = false) {
  auto fail = [seed](const std::string& what) {
    std::fprintf(stderr, "CHAOS VIOLATION (seed %llu): %s\n",
                 static_cast<unsigned long long>(seed), what.c_str());
    return false;
  };

  sim::Simulator sim;
  sim.set_event_hasher(hasher);
  RosSystem system(sim, TestSystemConfig());
  auto olfs = std::make_unique<Olfs>(sim, &system, ChaosParams());
  olfs->burns().burn_start_interval = Seconds(1);

  sim::FaultInjector faults(seed);
  faults.set_event_hasher(hasher);
  faults.FailNth(FaultKind::kBurnFailure, "", 2);
  faults.FailNth(FaultKind::kMechFault, "", 10);
  faults.FailNth(FaultKind::kLatentSectorError, "", 3);
  faults.SetRate(FaultKind::kLatentSectorError, opt.latent_rate);
  faults.SetRate(FaultKind::kMechFault, opt.mech_rate);
  system.InstallFaultInjector(&faults);

  // Acked writes: only content whose Create returned OkStatus counts.
  // Writes carry an AccessHint stream tag so the storm also exercises the
  // affinity channel (two interleaved streams).
  std::map<std::string, std::vector<std::uint8_t>> acked;
  std::map<std::string, std::uint64_t> stream_of;
  for (int i = 0; i < opt.files; ++i) {
    const std::string path = "/storm/f" + std::to_string(i);
    const std::uint64_t stream = 1 + (i % 2);
    auto payload = RandomBytes(8 * kKiB + i * 4096, seed * 1000 + i);
    Status created = sim.RunUntilComplete(
        olfs->Create(path, payload, payload.size(), AccessHint{stream}));
    if (!created.ok()) {
      return fail("write not acked: " + created.ToString());
    }
    acked[path] = std::move(payload);
    stream_of[path] = stream;
  }
  Status drained = sim.RunUntilComplete(olfs->FlushAndDrain());
  if (!drained.ok()) {
    return fail("burn pipeline: " + drained.ToString());
  }

  // Burned tray set, used to aim speculative loads during the storm.
  std::vector<int> spec_trays;
  {
    std::set<int> burned;
    for (const std::string& id : olfs->images().BurnedImages()) {
      auto record = olfs->images().Lookup(id);
      if (record.ok() && (*record)->disc.has_value()) {
        burned.insert((*record)->disc->tray.ToIndex());
      }
    }
    spec_trays.assign(burned.begin(), burned.end());
  }

  // Read-back under fire, with speculative loads enqueued between demand
  // reads: the background class must cancel or yield, never evict a
  // demanded tray. Latencies feed the summary line.
  std::vector<double> read_latencies;
  std::size_t spec_cursor = 0;
  for (const auto& [path, expect] : acked) {
    if (!spec_trays.empty()) {
      olfs->fetch_scheduler()->EnqueueSpeculative(
          mech::TrayAddress::FromIndex(
              spec_trays[spec_cursor++ % spec_trays.size()]));
    }
    const sim::TimePoint start = sim.now();
    auto data = sim.RunUntilComplete(
        olfs->Read(path, 0, expect.size(), AccessHint{stream_of[path]}));
    read_latencies.push_back(sim::ToSeconds(sim.now() - start));
    if (!data.ok()) {
      return fail(path + " lost: " + data.status().ToString());
    }
    if (*data != expect) {
      return fail(path + " read back different bytes");
    }
  }
  const FetchSchedulerStats spec_stats = olfs->fetch_scheduler()->stats();
  if (spec_stats.speculative_demand_evictions != 0) {
    return fail("speculative load evicted a demanded tray");
  }
  if (olfs->fetch_scheduler()->queue_depth() != 0) {
    return fail("fetch queue did not drain after read-back");
  }

  // Storm over: scrub out latent damage, drain repair re-burns, then
  // prove a from-scratch disc scan still recovers the namespace.
  system.InstallFaultInjector(nullptr);
  auto scrubbed = sim.RunUntilComplete(olfs->ScrubAndRepair());
  if (!scrubbed.ok()) {
    return fail("scrub: " + scrubbed.status().ToString());
  }
  Status repairs = sim.RunUntilComplete(olfs->FlushAndDrain());
  if (!repairs.ok()) {
    return fail("repair burns: " + repairs.ToString());
  }

  std::set<int> tray_indices;
  for (const std::string& id : olfs->images().BurnedImages()) {
    auto record = olfs->images().Lookup(id);
    if (record.ok() && (*record)->disc.has_value()) {
      tray_indices.insert((*record)->disc->tray.ToIndex());
    }
  }
  const std::uint64_t degraded = olfs->degraded_reads();
  const std::uint64_t reconstructions = olfs->reconstructions();
  const std::uint64_t repaired = olfs->images_repaired();
  const int burn_retries = olfs->burns().burn_retries();
  const int reallocated = olfs->burns().arrays_reallocated();
  const std::uint64_t fetch_retries = olfs->fetches().retries();

  olfs = std::make_unique<Olfs>(sim, &system, ChaosParams());
  olfs->burns().burn_start_interval = Seconds(1);
  std::vector<mech::TrayAddress> trays;
  for (int t : tray_indices) {
    trays.push_back(mech::TrayAddress::FromIndex(t));
  }
  auto report = sim.RunUntilComplete(olfs->RebuildNamespace(trays));
  if (!report.ok()) {
    return fail("rebuild: " + report.status().ToString());
  }
  for (const auto& [path, expect] : acked) {
    auto data =
        sim.RunUntilComplete(olfs->Read(path, 0, expect.size()));
    if (!data.ok()) {
      return fail(path + " lost after rebuild: " +
                  data.status().ToString());
    }
    if (*data != expect) {
      return fail(path + " different bytes after rebuild");
    }
  }

  if (quiet) {
    sim.Shutdown();
    return true;
  }
  const SummaryStats lat = Summarize(std::move(read_latencies));
  std::printf(
      "{\"seed\": %llu, \"acked_files\": %zu, \"injected\": "
      "{\"burn\": %llu, \"latent\": %llu, \"mech\": %llu}, "
      "\"degraded_reads\": %llu, \"reconstructions\": %llu, "
      "\"images_repaired\": %llu, \"burn_retries\": %d, "
      "\"arrays_reallocated\": %d, \"fetch_retries\": %llu, "
      "\"read_latency_s\": {\"mean\": %.6f, \"p50\": %.6f, "
      "\"p99\": %.6f}, \"speculative\": {\"enqueued\": %llu, "
      "\"loads\": %llu, \"canceled\": %llu, \"useful\": %llu, "
      "\"demand_evictions\": %llu}, "
      "\"rebuild_files\": %d, \"sim_hours\": %.2f}\n",
      static_cast<unsigned long long>(seed), acked.size(),
      static_cast<unsigned long long>(
          faults.injected(FaultKind::kBurnFailure)),
      static_cast<unsigned long long>(
          faults.injected(FaultKind::kLatentSectorError)),
      static_cast<unsigned long long>(
          faults.injected(FaultKind::kMechFault)),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(reconstructions),
      static_cast<unsigned long long>(repaired), burn_retries,
      reallocated, static_cast<unsigned long long>(fetch_retries),
      lat.mean, lat.p50, lat.p99,
      static_cast<unsigned long long>(spec_stats.speculative_enqueued),
      static_cast<unsigned long long>(spec_stats.speculative_loads),
      static_cast<unsigned long long>(spec_stats.speculative_canceled),
      static_cast<unsigned long long>(spec_stats.speculative_useful),
      static_cast<unsigned long long>(
          spec_stats.speculative_demand_evictions),
      report->files_recovered, sim::ToSeconds(sim.now()) / 3600.0);
  sim.Shutdown();
  return true;
}

// Double-runs one seed with the divergence oracle installed. Returns true
// when both runs uphold the invariants and their event streams hash
// identically.
bool ReplayCheckSeed(std::uint64_t seed, const Options& opt) {
  sim::EventHasher record;
  if (!RunSeed(seed, opt, &record)) {
    return false;
  }
  sim::EventHasher check(record.trail());
  const bool replay_ok = RunSeed(seed, opt, &check, /*quiet=*/true);
  check.Finish();
  if (check.diverged()) {
    const sim::EventHasher::Divergence& div = *check.divergence();
    std::fprintf(stderr,
                 "REPLAY DIVERGENCE (seed %llu): event #%llu: %s\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(div.index),
                 div.description.c_str());
    return false;
  }
  if (!replay_ok) {
    return false;
  }
  std::printf("{\"seed\": %llu, \"replay_events\": %llu, "
              "\"replay_digest\": \"%016llx\"}\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(check.event_count()),
              static_cast<unsigned long long>(check.digest()));
  return true;
}

std::vector<std::uint64_t> ParseSeeds(const char* list) {
  std::vector<std::uint64_t> seeds;
  for (const char* p = list; *p != '\0';) {
    char* end = nullptr;
    seeds.push_back(std::strtoull(p, &end, 10));
    if (end == p) {
      break;
    }
    p = *end == ',' ? end + 1 : end;
  }
  return seeds;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      opt.seeds = {std::strtoull(arg.c_str() + 7, nullptr, 10)};
    } else if (arg.rfind("--seeds=", 0) == 0) {
      opt.seeds = ParseSeeds(arg.c_str() + 8);
    } else if (arg.rfind("--files=", 0) == 0) {
      opt.files = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--latent-rate=", 0) == 0) {
      opt.latent_rate = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--mech-rate=", 0) == 0) {
      opt.mech_rate = std::atof(arg.c_str() + 12);
    } else if (arg == "--replay-check") {
      opt.replay_check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed=N | --seeds=A,B,C] [--files=N] "
                   "[--latent-rate=R] [--mech-rate=R] [--replay-check]\n",
                   argv[0]);
      return 2;
    }
  }
  int failures = 0;
  for (std::uint64_t seed : opt.seeds) {
    const bool ok = opt.replay_check ? ReplayCheckSeed(seed, opt)
                                     : RunSeed(seed, opt);
    if (!ok) {
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d of %zu seeds violated an invariant\n",
                 failures, opt.seeds.size());
    return 1;
  }
  std::printf("all %zu seeds upheld every invariant\n", opt.seeds.size());
  return 0;
}

}  // namespace
}  // namespace ros::olfs

int main(int argc, char** argv) { return ros::olfs::Main(argc, argv); }
