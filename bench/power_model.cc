// Reproduces §5.1's power figures (idle 185 W, peak 652 W) and estimates
// the energy cost of representative operating points — part of the TCO
// story: optical media draws nothing at rest, unlike spinning HDD fleets.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/olfs/power.h"

using namespace ros;
using namespace ros::olfs;

int main() {
  SystemConfig prototype;  // 2 rollers, 24 drives, 14 HDDs, 2 SSDs
  PowerModel model;

  bench::PrintHeader("Power (§5.1): prototype rack");
  bench::PrintRow("idle power", 185.0, model.IdleWatts(prototype), "W");
  bench::PrintRow("peak power", 652.0, model.PeakWatts(prototype), "W");
  bench::PrintRow("roller rotation draw (<50 W)", 50.0,
                  model.roller_active_w, "W");
  bench::PrintRow("optical drive peak draw", 8.0, model.drive_busy_w, "W");

  bench::PrintHeader("Operating points");
  struct Point {
    const char* name;
    PowerModel::Activity activity;
  };
  const Point points[] = {
      {"idle (all media at rest)", {}},
      {"NAS ingest (controller + disks)",
       {.controller_busy = true, .ssds_busy = 2, .hdds_busy = 14}},
      {"burning one 12-disc array",
       {.controller_busy = true, .ssds_busy = 1, .hdds_busy = 7,
        .drives_busy = 12}},
      {"mechanical fetch in progress",
       {.controller_busy = true, .roller_rotating = true,
        .arm_moving = true}},
  };
  for (const Point& point : points) {
    std::printf("  %-40s %7.1f W\n", point.name,
                model.Watts(prototype, point.activity));
  }

  // Energy of burning 1 PB (the archival write path's energy bill).
  const double burn_w =
      model.Watts(prototype, {.controller_busy = true, .ssds_busy = 1,
                              .hdds_busy = 7, .drives_busy = 12});
  const double array_bytes = 12.0 * 25e9;
  const double array_seconds = 1146.0;  // Fig 9
  const double joules_per_pb = burn_w * array_seconds * (1e15 / array_bytes);
  std::printf("\n  energy to burn 1 PB of 25 GB arrays: %.0f kWh\n",
              joules_per_pb / 3.6e6);
  bench::PrintNote(
      "once burned, preserved data draws 0 W — the heart of the optical "
      "TCO advantage (§2.1)");
  return 0;
}
