// Reproduces Figure 8 (§5.4): the single-drive 25 GB burn speed curve —
// a zoned ramp from 1.6X on the inner tracks to 12X on the outer tracks,
// averaging 8.2X over ~675 s.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/drive/optical_drive.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

using namespace ros;

int main() {
  sim::Simulator sim;
  drive::OpticalDrive drive(sim, nullptr, 0);
  auto disc = std::make_unique<drive::Disc>("d", drive::DiscType::kBdr25);
  ROS_CHECK(drive.InsertDisc(disc.get()).ok());

  bench::PrintHeader("Figure 8: single-drive 25 GB burn (speed vs progress)");
  std::printf("  %-24s %8s  %10s\n", "", "progress", "speed (X)");
  double last_speed = -1;
  drive.burn_observer = [&](double progress, double speed_x) {
    if (speed_x != last_speed) {
      bench::PrintSeries("zone boundary", progress * 100.0, speed_x, "X");
      last_speed = speed_x;
    }
  };

  sim::TimePoint t0 = sim.now();
  ROS_CHECK(sim.RunUntilComplete(drive.EnsureAwake()).ok());
  sim::TimePoint burn_start = sim.now();
  auto result =
      sim.RunUntilComplete(drive.BurnImage("img", 25 * kGB, {}));
  ROS_CHECK(result.ok() && result->completed);
  const double burn_seconds = sim::ToSeconds(sim.now() - burn_start);
  (void)t0;

  auto profile = drive::BurnSpeedProfile::For(drive::DiscType::kBdr25);
  std::printf("\n");
  bench::PrintRow("total recording time", 675.0, burn_seconds, "s");
  bench::PrintRow("average recording speed", 8.2, profile.AverageSpeedX(),
                  "X");
  bench::PrintRow("inner-track (start) speed", 1.6, profile.SpeedAt(0.0),
                  "X");
  bench::PrintRow("outer-track (end) speed", 12.0, profile.SpeedAt(0.99),
                  "X");
  return 0;
}
