// Ablation for §3.2: "precisely scheduling movements of the roller and
// robotic arm in parallel can save up to almost 10 seconds" — preparing a
// load (pre-rotating the roller, fanning the tray out, pre-positioning the
// arm) while the drives are still busy shortens the next load.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/mech/library.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

using namespace ros;

namespace {

double TimedLoad(sim::Simulator& sim, mech::Library& lib,
                 mech::TrayAddress tray, int bay) {
  sim::TimePoint start = sim.now();
  ROS_CHECK(sim.RunUntilComplete(lib.LoadArray(tray, bay)).ok());
  return sim::ToSeconds(sim.now() - start);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation (§3.2): overlapped roller/arm scheduling (PrepareLoad)");

  std::printf("  %-34s %10s %10s %8s\n", "tray", "serial(s)", "prepared(s)",
              "saved(s)");
  double max_saving = 0;
  for (int layer : {0, 42, 84}) {
    for (int slot : {1, 3}) {
      // Serial: the load pays rotation + descent + fan-out inline.
      sim::Simulator sim_a;
      mech::Library lib_a(sim_a, mech::LibraryConfig{});
      const double serial =
          TimedLoad(sim_a, lib_a, {0, layer, slot}, 0);

      // Prepared: the conveyance steps ran while the drives were busy.
      sim::Simulator sim_b;
      mech::Library lib_b(sim_b, mech::LibraryConfig{});
      ROS_CHECK(sim_b.RunUntilComplete(
                    lib_b.PrepareLoad({0, layer, slot})).ok());
      const double prepared =
          TimedLoad(sim_b, lib_b, {0, layer, slot}, 0);

      const double saved = serial - prepared;
      max_saving = std::max(max_saving, saved);
      char label[64];
      std::snprintf(label, sizeof(label), "layer %2d, slot %d (rot %d)",
                    layer, slot, mech::SlotDistance(0, slot));
      std::printf("  %-34s %10.2f %10.2f %8.2f\n", label, serial, prepared,
                  saved);
    }
  }
  std::printf("\n");
  bench::PrintRow("max conveyance saving", 10.0, max_saving, "s");
  bench::PrintNote(
      "the paper: parallel scheduling saves 'up to almost 10 seconds'");
  return 0;
}
