// Fetch-scheduler benchmark (DESIGN.md §5f): tray-batched, geometry-aware
// dispatch vs. the legacy first-come-first-served bay scramble, measured
// in the same binary by flipping OlfsParams::fetch_scheduler_enabled.
//
// For each (concurrent readers, locality mix) cell the identical seeded
// read sequence runs against a fresh rack in both modes and reports, in
// deterministic simulated time:
//
//   - mechanical load/unload cycles consumed (Library telemetry)
//   - per-read latency mean and p99
//   - scheduler-only telemetry: parked hits, handoffs, batch sizes,
//     aged dispatches, estimated positioning cost
//
// Every read's bytes are hashed and compared across modes: the scheduler
// may reorder mechanical work but must never change what a read returns.
//
// A second section replays a sweep-vs-hot-set trace against the segmented
// (SLRU + ghost) read cache and a plain-LRU-configured instance of the
// same class to show scan resistance.
//
// Gates (exit 1 on violation):
//   - every cell: bytes identical between modes
//   - cells with >= 8 readers and tray locality: strictly fewer
//     load/unload cycles AND lower mean AND lower p99 latency
//   - scan resistance: SLRU hit rate strictly above plain LRU
//
// Flags: --smoke (one 8-reader sweep, CI-sized).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/olfs/olfs.h"
#include "src/olfs/read_cache.h"
#include "src/sim/join.h"
#include "src/sim/time.h"

namespace {

using namespace ros;

constexpr int kArrays = 6;
// Each array holds one 10 MiB file split over three ~4 MiB images: reads
// of different offsets hit different discs of the SAME tray, which is
// exactly the access pattern tray batching exists for (and what the
// image-level single-flight cannot already collapse).
constexpr int kImagesPerArray = 3;
constexpr std::uint64_t kFileSize = 10 * kMiB;
constexpr std::uint64_t kDiscCapacity = 4 * kMiB;
constexpr std::uint64_t kReadLen = 8 * kKiB;
constexpr std::uint64_t kOffsets[kImagesPerArray] = {kMiB / 2, 5 * kMiB,
                                                     9 * kMiB};

std::vector<std::uint8_t> PayloadFor(int array) {
  Rng rng(7000 + static_cast<std::uint64_t>(array));
  std::vector<std::uint8_t> out(kFileSize);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

struct ReadSpec {
  int array;
  int image;  // offset slot within the array's file
};

// Seeded per-reader read sequences, shared verbatim by both modes.
// Hot locality: 3/4 of reads target arrays {0, 1, 2} — one more hot
// array than the rack has bays, so residency is contested and victim
// choice matters; the uniform tail forces evictions either way.
std::vector<std::vector<ReadSpec>> MakeSequences(int readers,
                                                 int reads_each,
                                                 bool hot_locality) {
  Rng rng(0xf57c + static_cast<std::uint64_t>(readers) * 131 +
          (hot_locality ? 1 : 0));
  std::vector<std::vector<ReadSpec>> seq(
      static_cast<std::size_t>(readers));
  for (auto& s : seq) {
    s.reserve(static_cast<std::size_t>(reads_each));
    for (int k = 0; k < reads_each; ++k) {
      const int array = hot_locality && rng.Chance(0.75)
                            ? static_cast<int>(rng.Below(3))
                            : static_cast<int>(rng.Below(kArrays));
      s.push_back({array, static_cast<int>(rng.Below(kImagesPerArray))});
    }
  }
  return seq;
}

struct ModeResult {
  std::uint64_t loads = 0;
  std::uint64_t unloads = 0;
  double mean_s = 0;
  double p99_s = 0;
  double makespan_s = 0;
  std::vector<std::uint64_t> hashes;  // one per (reader, read) in order
  json::Object scheduler;             // scheduler-only telemetry (may be empty)
};

sim::Task<Status> Reader(olfs::Olfs* olfs,
                         const std::vector<ReadSpec>* seq,
                         std::vector<double>* latencies,
                         std::vector<std::uint64_t>* hashes,
                         sim::Simulator* sim) {
  for (const ReadSpec& spec : *seq) {
    const sim::TimePoint t0 = sim->now();
    auto data = co_await olfs->Read(
        "/a" + std::to_string(spec.array),
        kOffsets[static_cast<std::size_t>(spec.image)], kReadLen);
    ROS_CO_RETURN_IF_ERROR(data.status());
    latencies->push_back(sim::ToSeconds(sim->now() - t0));
    hashes->push_back(Fnv1a64(*data));
  }
  co_return OkStatus();
}

bool RunMode(bool scheduler_enabled,
             const std::vector<std::vector<ReadSpec>>& sequences,
             ModeResult* out) {
  sim::Simulator sim;
  olfs::SystemConfig config = olfs::TestSystemConfig();
  config.drive_sets = 2;
  olfs::RosSystem system(sim, config);
  olfs::OlfsParams params;
  params.disc_capacity_override = kDiscCapacity;
  params.read_cache_bytes = 0;  // every read exercises the fetch path
  params.fetch_scheduler_enabled = scheduler_enabled;
  olfs::Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = sim::Seconds(1);

  for (int a = 0; a < kArrays; ++a) {
    if (!sim.RunUntilComplete(
               olfs.Create("/a" + std::to_string(a), PayloadFor(a)))
             .ok() ||
        !sim.RunUntilComplete(olfs.FlushAndDrain()).ok()) {
      std::fprintf(stderr, "staging array %d failed\n", a);
      return false;
    }
  }

  const std::uint64_t loads0 = olfs.mech().library().loads_completed();
  const std::uint64_t unloads0 = olfs.mech().library().unloads_completed();
  std::vector<std::vector<double>> latencies(sequences.size());
  std::vector<std::vector<std::uint64_t>> hashes(sequences.size());
  const sim::TimePoint t0 = sim.now();
  std::vector<sim::Task<Status>> readers;
  for (std::size_t r = 0; r < sequences.size(); ++r) {
    readers.push_back(
        Reader(&olfs, &sequences[r], &latencies[r], &hashes[r], &sim));
  }
  Status status =
      sim.RunUntilComplete(sim::AllOk(sim, std::move(readers)));
  if (!status.ok()) {
    std::fprintf(stderr, "read workload failed: %s\n",
                 status.ToString().c_str());
    return false;
  }
  out->makespan_s = sim::ToSeconds(sim.now() - t0);
  out->loads = olfs.mech().library().loads_completed() - loads0;
  out->unloads = olfs.mech().library().unloads_completed() - unloads0;

  std::vector<double> all;
  for (std::size_t r = 0; r < sequences.size(); ++r) {
    all.insert(all.end(), latencies[r].begin(), latencies[r].end());
    out->hashes.insert(out->hashes.end(), hashes[r].begin(),
                       hashes[r].end());
  }
  std::sort(all.begin(), all.end());
  double sum = 0;
  for (double v : all) {
    sum += v;
  }
  out->mean_s = all.empty() ? 0 : sum / static_cast<double>(all.size());
  const std::size_t p99 = all.empty()
      ? 0
      : std::min(all.size() - 1,
                 static_cast<std::size_t>(std::ceil(
                     0.99 * static_cast<double>(all.size()))) - 1);
  out->p99_s = all.empty() ? 0 : all[p99];

  if (const olfs::FetchScheduler* sched = olfs.fetch_scheduler()) {
    const olfs::FetchSchedulerStats& s = sched->stats();
    json::Object t;
    t["requests"] = json::Value(static_cast<std::int64_t>(s.requests));
    t["parked_hits"] =
        json::Value(static_cast<std::int64_t>(s.parked_hits));
    t["handoffs"] = json::Value(static_cast<std::int64_t>(s.handoffs));
    t["loads_avoided"] =
        json::Value(static_cast<std::int64_t>(s.loads_avoided()));
    t["max_batch"] = json::Value(static_cast<std::int64_t>(s.max_batch));
    t["max_queue_depth"] =
        json::Value(static_cast<std::int64_t>(s.max_queue_depth));
    t["aged_dispatches"] =
        json::Value(static_cast<std::int64_t>(s.aged_dispatches));
    t["mean_queue_delay_s"] =
        json::Value(sim::ToSeconds(s.mean_queue_delay()));
    t["est_positioning_s"] =
        json::Value(sim::ToSeconds(s.est_positioning));
    out->scheduler = std::move(t);
  }
  sim.Shutdown();
  return true;
}

json::Value ModeJson(const ModeResult& r) {
  json::Object o;
  o["load_cycles"] = json::Value(static_cast<std::int64_t>(r.loads));
  o["unload_cycles"] = json::Value(static_cast<std::int64_t>(r.unloads));
  o["mean_latency_s"] = json::Value(r.mean_s);
  o["p99_latency_s"] = json::Value(r.p99_s);
  o["makespan_s"] = json::Value(r.makespan_s);
  if (!r.scheduler.empty()) {
    o["scheduler"] = json::Value(r.scheduler);
  }
  return json::Value(std::move(o));
}

// --- scan resistance: segmented SLRU vs. plain LRU, same trace ---

struct CacheDriver {
  explicit CacheDriver(double protected_fraction)
      : cache(/*capacity_bytes=*/50, protected_fraction) {}

  void Access(const std::string& id) {
    if (!cache.Touch(id)) {
      cache.Admit(id, 1);
      for (const std::string& victim : cache.EvictionCandidates()) {
        cache.Remove(victim);
      }
    }
  }

  double HitRate() const {
    const double total =
        static_cast<double>(cache.hits() + cache.misses());
    return total == 0 ? 0 : static_cast<double>(cache.hits()) / total;
  }

  olfs::ReadCache cache;
};

json::Value ScanResistance(bool* pass) {
  CacheDriver slru(/*protected_fraction=*/0.8);
  CacheDriver lru(/*protected_fraction=*/0.0);
  // 20 hot images re-referenced throughout; a long one-touch sweep in
  // between. Plain LRU lets the sweep flush the hot set; the segmented
  // cache promotes the hot set out of the sweep's reach.
  constexpr int kHot = 20;
  int sweep_id = 0;
  Rng rng(0xcac4e);
  for (int i = 0; i < 4000; ++i) {
    std::string id;
    if (i % 3 == 0) {
      id = "hot" + std::to_string(rng.Below(kHot));
    } else {
      id = "sweep" + std::to_string(sweep_id++);
    }
    slru.Access(id);
    lru.Access(id);
  }
  json::Object o;
  o["slru_hit_rate"] = json::Value(slru.HitRate());
  o["plain_lru_hit_rate"] = json::Value(lru.HitRate());
  o["ghost_hit_admissions"] =
      json::Value(static_cast<std::int64_t>(slru.cache.ghost_hits()));
  const bool ok = slru.HitRate() > lru.HitRate();
  o["pass"] = json::Value(ok);
  *pass = ok;
  return json::Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  const std::vector<int> reader_counts =
      smoke ? std::vector<int>{8} : std::vector<int>{4, 8, 16};
  const int reads_each = smoke ? 6 : 10;

  bool all_pass = true;
  json::Array rows;
  for (int readers : reader_counts) {
    for (bool hot : {true, false}) {
      const auto sequences = MakeSequences(readers, reads_each, hot);
      ModeResult fifo;
      ModeResult sched;
      if (!RunMode(/*scheduler_enabled=*/false, sequences, &fifo) ||
          !RunMode(/*scheduler_enabled=*/true, sequences, &sched)) {
        return 1;
      }

      const bool bytes_identical = fifo.hashes == sched.hashes;
      const bool gated = readers >= 8 && hot;
      bool cell_pass = bytes_identical;
      if (gated) {
        cell_pass = cell_pass &&
                    sched.loads + sched.unloads <
                        fifo.loads + fifo.unloads &&
                    sched.mean_s < fifo.mean_s &&
                    sched.p99_s < fifo.p99_s;
      }
      all_pass = all_pass && cell_pass;

      json::Object row;
      row["readers"] = json::Value(static_cast<std::int64_t>(readers));
      row["locality"] = json::Value(hot ? "tray_hot" : "uniform");
      row["reads"] = json::Value(
          static_cast<std::int64_t>(readers * reads_each));
      row["fifo"] = ModeJson(fifo);
      row["scheduler"] = ModeJson(sched);
      row["bytes_identical"] = json::Value(bytes_identical);
      row["gated"] = json::Value(gated);
      row["pass"] = json::Value(cell_pass);
      rows.push_back(json::Value(std::move(row)));
      if (!cell_pass) {
        std::fprintf(stderr,
                     "cell failed: readers=%d locality=%s "
                     "(bytes_identical=%d)\n",
                     readers, hot ? "tray_hot" : "uniform",
                     bytes_identical ? 1 : 0);
      }
    }
  }

  bool scan_pass = false;
  json::Value scan = ScanResistance(&scan_pass);
  all_pass = all_pass && scan_pass;

  json::Object doc;
  doc["bench"] = json::Value("fetch_sched");
  doc["mode"] = json::Value(smoke ? "smoke" : "full");
  doc["rows"] = json::Value(std::move(rows));
  doc["scan_resistance"] = std::move(scan);
  doc["pass"] = json::Value(all_pass);
  std::printf("%s\n", json::Value(std::move(doc)).DumpPretty().c_str());
  return all_pass ? 0 : 1;
}
