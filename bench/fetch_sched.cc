// Fetch-scheduler benchmark (DESIGN.md §5f): tray-batched, geometry-aware
// dispatch vs. the legacy first-come-first-served bay scramble, measured
// in the same binary by flipping OlfsParams::fetch_scheduler_enabled.
//
// For each (concurrent readers, locality mix) cell the identical seeded
// read sequence runs against a fresh rack in both modes and reports, in
// deterministic simulated time:
//
//   - mechanical load/unload cycles consumed (Library telemetry)
//   - per-read latency mean and p99
//   - scheduler-only telemetry: parked hits, handoffs, batch sizes,
//     aged dispatches, estimated positioning cost
//
// Every read's bytes are hashed and compared across modes: the scheduler
// may reorder mechanical work but must never change what a read returns.
//
// A second section replays a sweep-vs-hot-set trace against the segmented
// (SLRU + ghost) read cache and a plain-LRU-configured instance of the
// same class to show scan resistance.
//
// A third section (DESIGN.md §5g) replays a multi-stream archival trace
// twice — once with cross-layer AccessHints (affinity placement +
// whole-tray readahead) and once untagged — over the same shuffled write
// order and the same seeded payloads, gating that hints strictly reduce
// mechanical cycles and p99 while returning byte-identical data.
//
// Gates (exit 1 on violation):
//   - every cell: bytes identical between modes
//   - cells with >= 8 readers and tray locality: strictly fewer
//     load/unload cycles AND lower mean AND lower p99 latency
//   - scan resistance: SLRU hit rate strictly above plain LRU
//   - trace replay at >= 8 readers: hints-on strictly fewer mechanical
//     cycles AND strictly lower p99 than hints-off; bytes identical at
//     every reader count
//
// Flags: --smoke (one 8-reader sweep, CI-sized), --trace-only (skip the
// legacy scheduler and scan-resistance sections), --replay-check (double-
// run the smoke scheduler cell with the sim::EventHasher divergence
// oracle installed and fail on any event-stream divergence, naming the
// first divergent event).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/olfs/olfs.h"
#include "src/olfs/read_cache.h"
#include "src/sim/event_hasher.h"
#include "src/sim/join.h"
#include "src/sim/time.h"

namespace {

using namespace ros;

constexpr int kArrays = 6;
// Each array holds one 10 MiB file split over three ~4 MiB images: reads
// of different offsets hit different discs of the SAME tray, which is
// exactly the access pattern tray batching exists for (and what the
// image-level single-flight cannot already collapse).
constexpr int kImagesPerArray = 3;
constexpr std::uint64_t kFileSize = 10 * kMiB;
constexpr std::uint64_t kDiscCapacity = 4 * kMiB;
constexpr std::uint64_t kReadLen = 8 * kKiB;
constexpr std::uint64_t kOffsets[kImagesPerArray] = {kMiB / 2, 5 * kMiB,
                                                     9 * kMiB};

std::vector<std::uint8_t> PayloadFor(int array) {
  Rng rng(7000 + static_cast<std::uint64_t>(array));
  std::vector<std::uint8_t> out(kFileSize);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

struct ReadSpec {
  int array;
  int image;  // offset slot within the array's file
};

// Seeded per-reader read sequences, shared verbatim by both modes.
// Hot locality: 3/4 of reads target arrays {0, 1, 2} — one more hot
// array than the rack has bays, so residency is contested and victim
// choice matters; the uniform tail forces evictions either way.
std::vector<std::vector<ReadSpec>> MakeSequences(int readers,
                                                 int reads_each,
                                                 bool hot_locality) {
  Rng rng(0xf57c + static_cast<std::uint64_t>(readers) * 131 +
          (hot_locality ? 1 : 0));
  std::vector<std::vector<ReadSpec>> seq(
      static_cast<std::size_t>(readers));
  for (auto& s : seq) {
    s.reserve(static_cast<std::size_t>(reads_each));
    for (int k = 0; k < reads_each; ++k) {
      const int array = hot_locality && rng.Chance(0.75)
                            ? static_cast<int>(rng.Below(3))
                            : static_cast<int>(rng.Below(kArrays));
      s.push_back({array, static_cast<int>(rng.Below(kImagesPerArray))});
    }
  }
  return seq;
}

struct ModeResult {
  std::uint64_t loads = 0;
  std::uint64_t unloads = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  double makespan_s = 0;
  std::vector<std::uint64_t> hashes;  // one per (reader, read) in order
  json::Object scheduler;             // scheduler-only telemetry (may be empty)
};

sim::Task<Status> Reader(olfs::Olfs* olfs,
                         const std::vector<ReadSpec>* seq,
                         std::vector<double>* latencies,
                         std::vector<std::uint64_t>* hashes,
                         sim::Simulator* sim) {
  for (const ReadSpec& spec : *seq) {
    const sim::TimePoint t0 = sim->now();
    auto data = co_await olfs->Read(
        "/a" + std::to_string(spec.array),
        kOffsets[static_cast<std::size_t>(spec.image)], kReadLen);
    ROS_CO_RETURN_IF_ERROR(data.status());
    latencies->push_back(sim::ToSeconds(sim->now() - t0));
    hashes->push_back(Fnv1a64(*data));
  }
  co_return OkStatus();
}

bool RunMode(bool scheduler_enabled,
             const std::vector<std::vector<ReadSpec>>& sequences,
             ModeResult* out, sim::EventHasher* hasher = nullptr) {
  sim::Simulator sim;
  sim.set_event_hasher(hasher);
  olfs::SystemConfig config = olfs::TestSystemConfig();
  config.drive_sets = 2;
  olfs::RosSystem system(sim, config);
  olfs::OlfsParams params;
  params.disc_capacity_override = kDiscCapacity;
  params.read_cache_bytes = 0;  // every read exercises the fetch path
  params.fetch_scheduler_enabled = scheduler_enabled;
  olfs::Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = sim::Seconds(1);

  for (int a = 0; a < kArrays; ++a) {
    if (!sim.RunUntilComplete(
               olfs.Create("/a" + std::to_string(a), PayloadFor(a)))
             .ok() ||
        !sim.RunUntilComplete(olfs.FlushAndDrain()).ok()) {
      std::fprintf(stderr, "staging array %d failed\n", a);
      return false;
    }
  }

  const std::uint64_t loads0 = olfs.mech().library().loads_completed();
  const std::uint64_t unloads0 = olfs.mech().library().unloads_completed();
  std::vector<std::vector<double>> latencies(sequences.size());
  std::vector<std::vector<std::uint64_t>> hashes(sequences.size());
  const sim::TimePoint t0 = sim.now();
  std::vector<sim::Task<Status>> readers;
  for (std::size_t r = 0; r < sequences.size(); ++r) {
    readers.push_back(
        Reader(&olfs, &sequences[r], &latencies[r], &hashes[r], &sim));
  }
  Status status =
      sim.RunUntilComplete(sim::AllOk(sim, std::move(readers)));
  if (!status.ok()) {
    std::fprintf(stderr, "read workload failed: %s\n",
                 status.ToString().c_str());
    return false;
  }
  out->makespan_s = sim::ToSeconds(sim.now() - t0);
  out->loads = olfs.mech().library().loads_completed() - loads0;
  out->unloads = olfs.mech().library().unloads_completed() - unloads0;

  std::vector<double> all;
  for (std::size_t r = 0; r < sequences.size(); ++r) {
    all.insert(all.end(), latencies[r].begin(), latencies[r].end());
    out->hashes.insert(out->hashes.end(), hashes[r].begin(),
                       hashes[r].end());
  }
  const SummaryStats stats = Summarize(std::move(all));
  out->mean_s = stats.mean;
  out->p50_s = stats.p50;
  out->p99_s = stats.p99;

  if (const olfs::FetchScheduler* sched = olfs.fetch_scheduler()) {
    const olfs::FetchSchedulerStats& s = sched->stats();
    json::Object t;
    t["requests"] = json::Value(static_cast<std::int64_t>(s.requests));
    t["parked_hits"] =
        json::Value(static_cast<std::int64_t>(s.parked_hits));
    t["handoffs"] = json::Value(static_cast<std::int64_t>(s.handoffs));
    t["loads_avoided"] =
        json::Value(static_cast<std::int64_t>(s.loads_avoided()));
    t["max_batch"] = json::Value(static_cast<std::int64_t>(s.max_batch));
    t["max_queue_depth"] =
        json::Value(static_cast<std::int64_t>(s.max_queue_depth));
    t["aged_dispatches"] =
        json::Value(static_cast<std::int64_t>(s.aged_dispatches));
    t["mean_queue_delay_s"] =
        json::Value(sim::ToSeconds(s.mean_queue_delay()));
    t["est_positioning_s"] =
        json::Value(sim::ToSeconds(s.est_positioning));
    out->scheduler = std::move(t);
  }
  sim.Shutdown();
  return true;
}

json::Value ModeJson(const ModeResult& r) {
  json::Object o;
  o["load_cycles"] = json::Value(static_cast<std::int64_t>(r.loads));
  o["unload_cycles"] = json::Value(static_cast<std::int64_t>(r.unloads));
  o["mean_latency_s"] = json::Value(r.mean_s);
  o["p50_latency_s"] = json::Value(r.p50_s);
  o["p99_latency_s"] = json::Value(r.p99_s);
  o["makespan_s"] = json::Value(r.makespan_s);
  if (!r.scheduler.empty()) {
    o["scheduler"] = json::Value(r.scheduler);
  }
  return json::Value(std::move(o));
}

// --- scan resistance: segmented SLRU vs. plain LRU, same trace ---

struct CacheDriver {
  explicit CacheDriver(double protected_fraction)
      : cache(/*capacity_bytes=*/50, protected_fraction) {}

  void Access(const std::string& id) {
    if (!cache.Touch(id)) {
      cache.Admit(id, 1);
      for (const std::string& victim : cache.EvictionCandidates()) {
        cache.Remove(victim);
      }
    }
  }

  double HitRate() const {
    const double total =
        static_cast<double>(cache.hits() + cache.misses());
    return total == 0 ? 0 : static_cast<double>(cache.hits()) / total;
  }

  olfs::ReadCache cache;
};

json::Value ScanResistance(bool* pass) {
  CacheDriver slru(/*protected_fraction=*/0.8);
  CacheDriver lru(/*protected_fraction=*/0.0);
  // 20 hot images re-referenced throughout; a long one-touch sweep in
  // between. Plain LRU lets the sweep flush the hot set; the segmented
  // cache promotes the hot set out of the sweep's reach.
  constexpr int kHot = 20;
  int sweep_id = 0;
  Rng rng(0xcac4e);
  for (int i = 0; i < 4000; ++i) {
    std::string id;
    if (i % 3 == 0) {
      id = "hot" + std::to_string(rng.Below(kHot));
    } else {
      id = "sweep" + std::to_string(sweep_id++);
    }
    slru.Access(id);
    lru.Access(id);
  }
  json::Object o;
  o["slru_hit_rate"] = json::Value(slru.HitRate());
  o["plain_lru_hit_rate"] = json::Value(lru.HitRate());
  o["ghost_hit_admissions"] =
      json::Value(static_cast<std::int64_t>(slru.cache.ghost_hits()));
  const bool ok = slru.HitRate() > lru.HitRate();
  o["pass"] = json::Value(ok);
  *pass = ok;
  return json::Value(std::move(o));
}

// --- trace replay: cross-layer hints on vs. off, same archival trace ---
//
// Four write streams each archive 11 files sized so every file closes its
// own disc image; the interleaved (shuffled) close order scatters each
// stream across trays unless affinity placement interferes. Replay scans
// each stream front to back in 256 KiB chunks. With hints, the planner
// burns stream-pure trays and the scan hint stages whole trays into the
// read cache, so a scan costs roughly one tray load; without, every
// reader random-walks the rack's trays through two bays.

constexpr int kTraceStreams = 4;
constexpr int kTraceFilesPerStream = 11;  // one full RAID-5 array per stream
constexpr std::uint64_t kTraceFileSize = 1016 * kKiB;
constexpr std::uint64_t kTraceDiscCapacity = 1 * kMiB;
constexpr std::uint64_t kTraceChunk = 256 * kKiB;

std::string TracePath(int stream, int file) {
  return "/t-s" + std::to_string(stream) + "-f" + std::to_string(file);
}

std::vector<std::uint8_t> TracePayload(int stream, int file) {
  Rng rng(9100 + static_cast<std::uint64_t>(stream) * 100 +
          static_cast<std::uint64_t>(file));
  std::vector<std::uint8_t> out(kTraceFileSize);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

// Seeded shuffle of the (stream, file) write order, shared by both modes:
// close order — and therefore close-order placement — mixes the streams.
std::vector<std::pair<int, int>> TraceWriteOrder() {
  std::vector<std::pair<int, int>> order;
  for (int s = 0; s < kTraceStreams; ++s) {
    for (int f = 0; f < kTraceFilesPerStream; ++f) {
      order.emplace_back(s, f);
    }
  }
  Rng rng(0x7ace);
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Below(i + 1)]);
  }
  return order;
}

// Drops every burned image's staged copy from the buffer and the read
// cache: the replay starts cold in both modes, so any cache residency it
// measures was earned by the hints (readahead) or by demand fetches.
sim::Task<Status> DropCachedImages(olfs::Olfs* olfs) {
  for (const std::string& id : olfs->images().BurnedImages()) {
    auto record = olfs->images().Lookup(id);
    if (!record.ok() ||
        (*record)->tier != olfs::ImageTier::kBurnedCached) {
      continue;
    }
    disk::Volume* volume = olfs->buckets().volume((*record)->volume_index);
    if (volume->Exists((*record)->volume_file)) {
      ROS_CO_RETURN_IF_ERROR(
          co_await volume->Delete((*record)->volume_file));
    }
    ROS_CO_RETURN_IF_ERROR(olfs->images().DropFromBuffer(id));
    olfs->cache().Remove(id);
  }
  co_return OkStatus();
}

struct TraceResult {
  std::uint64_t loads = 0;
  std::uint64_t unloads = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  double makespan_s = 0;
  std::uint64_t readahead_images = 0;
  std::uint64_t readahead_bytes = 0;
  std::uint64_t affinity_edges = 0;
  std::uint64_t speculative_enqueued = 0;
  std::uint64_t speculative_loads = 0;
  std::uint64_t speculative_demand_evictions = 0;
  std::vector<std::uint64_t> hashes;
};

sim::Task<Status> TraceReader(olfs::Olfs* olfs, int stream, bool hints,
                              std::vector<double>* latencies,
                              std::vector<std::uint64_t>* hashes,
                              sim::Simulator* sim) {
  const olfs::AccessHint hint =
      hints ? olfs::AccessHint{static_cast<std::uint64_t>(stream) + 1,
                               /*scan=*/true}
            : olfs::AccessHint{};
  for (int f = 0; f < kTraceFilesPerStream; ++f) {
    for (std::uint64_t offset = 0; offset < kTraceFileSize;
         offset += kTraceChunk) {
      const std::uint64_t n = std::min(kTraceChunk, kTraceFileSize - offset);
      const sim::TimePoint t0 = sim->now();
      auto data =
          co_await olfs->Read(TracePath(stream, f), offset, n, hint);
      ROS_CO_RETURN_IF_ERROR(data.status());
      latencies->push_back(sim::ToSeconds(sim->now() - t0));
      hashes->push_back(Fnv1a64(*data));
    }
  }
  co_return OkStatus();
}

bool RunTrace(bool hints, int readers, TraceResult* out) {
  sim::Simulator sim;
  olfs::SystemConfig config = olfs::TestSystemConfig();
  config.drive_sets = 2;
  olfs::RosSystem system(sim, config);
  olfs::OlfsParams params;
  params.disc_capacity_override = kTraceDiscCapacity;
  // Large enough for every stream's whole-tray readahead to stay resident
  // through the replay; identical in both modes so only the hints differ.
  params.read_cache_bytes = 48 * kMiB;
  params.fetch_scheduler_enabled = true;
  // Pool three extra arrays' worth of closed images before planning a
  // burn batch, so the clusterer sees all four streams at once. Inert in
  // hints-off mode (no co-access edges are ever recorded).
  params.affinity_batch_window = 33;
  olfs::Olfs olfs(sim, &system, params);
  olfs.burns().burn_start_interval = sim::Seconds(1);

  for (const auto& [s, f] : TraceWriteOrder()) {
    const olfs::AccessHint hint =
        hints ? olfs::AccessHint{static_cast<std::uint64_t>(s) + 1}
              : olfs::AccessHint{};
    if (!sim.RunUntilComplete(olfs.Create(TracePath(s, f),
                                          TracePayload(s, f),
                                          kTraceFileSize, hint))
             .ok()) {
      std::fprintf(stderr, "trace write s%d f%d failed\n", s, f);
      return false;
    }
  }
  if (!sim.RunUntilComplete(olfs.FlushAndDrain()).ok()) {
    std::fprintf(stderr, "trace drain failed\n");
    return false;
  }
  if (!sim.RunUntilComplete(DropCachedImages(&olfs)).ok()) {
    std::fprintf(stderr, "trace cache drop failed\n");
    return false;
  }

  const std::uint64_t loads0 = olfs.mech().library().loads_completed();
  const std::uint64_t unloads0 = olfs.mech().library().unloads_completed();
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(readers));
  std::vector<std::vector<std::uint64_t>> hashes(
      static_cast<std::size_t>(readers));
  const sim::TimePoint t0 = sim.now();
  std::vector<sim::Task<Status>> tasks;
  for (int r = 0; r < readers; ++r) {
    tasks.push_back(TraceReader(&olfs, r % kTraceStreams, hints,
                                &latencies[static_cast<std::size_t>(r)],
                                &hashes[static_cast<std::size_t>(r)],
                                &sim));
  }
  Status status = sim.RunUntilComplete(sim::AllOk(sim, std::move(tasks)));
  if (!status.ok()) {
    std::fprintf(stderr, "trace replay failed: %s\n",
                 status.ToString().c_str());
    return false;
  }
  out->makespan_s = sim::ToSeconds(sim.now() - t0);
  out->loads = olfs.mech().library().loads_completed() - loads0;
  out->unloads = olfs.mech().library().unloads_completed() - unloads0;

  std::vector<double> all;
  for (int r = 0; r < readers; ++r) {
    const auto& l = latencies[static_cast<std::size_t>(r)];
    const auto& h = hashes[static_cast<std::size_t>(r)];
    all.insert(all.end(), l.begin(), l.end());
    out->hashes.insert(out->hashes.end(), h.begin(), h.end());
  }
  const SummaryStats stats = Summarize(std::move(all));
  out->mean_s = stats.mean;
  out->p50_s = stats.p50;
  out->p99_s = stats.p99;

  out->readahead_images = olfs.readahead_images();
  out->readahead_bytes = olfs.readahead_bytes();
  out->affinity_edges = olfs.affinity().edges();
  if (const olfs::FetchScheduler* sched = olfs.fetch_scheduler()) {
    const olfs::FetchSchedulerStats& s = sched->stats();
    out->speculative_enqueued = s.speculative_enqueued;
    out->speculative_loads = s.speculative_loads;
    out->speculative_demand_evictions = s.speculative_demand_evictions;
  }
  sim.Shutdown();
  return true;
}

json::Value TraceModeJson(const TraceResult& r) {
  json::Object o;
  o["load_cycles"] = json::Value(static_cast<std::int64_t>(r.loads));
  o["unload_cycles"] = json::Value(static_cast<std::int64_t>(r.unloads));
  o["mean_latency_s"] = json::Value(r.mean_s);
  o["p50_latency_s"] = json::Value(r.p50_s);
  o["p99_latency_s"] = json::Value(r.p99_s);
  o["makespan_s"] = json::Value(r.makespan_s);
  o["readahead_images"] =
      json::Value(static_cast<std::int64_t>(r.readahead_images));
  o["readahead_bytes"] =
      json::Value(static_cast<std::int64_t>(r.readahead_bytes));
  o["affinity_edges"] =
      json::Value(static_cast<std::int64_t>(r.affinity_edges));
  o["speculative_enqueued"] =
      json::Value(static_cast<std::int64_t>(r.speculative_enqueued));
  o["speculative_loads"] =
      json::Value(static_cast<std::int64_t>(r.speculative_loads));
  return json::Value(std::move(o));
}

// Double-runs the CI-sized scheduler cell with the divergence oracle
// installed. The second run must replay the first's event stream exactly
// AND return byte-identical reads; any divergence names the first
// divergent event.
int ReplayCheck() {
  const auto sequences =
      MakeSequences(/*readers=*/8, /*reads_each=*/6, /*hot_locality=*/true);
  sim::EventHasher record;
  ModeResult first;
  if (!RunMode(/*scheduler_enabled=*/true, sequences, &first, &record)) {
    return 1;
  }
  sim::EventHasher check(record.trail());
  ModeResult second;
  if (!RunMode(/*scheduler_enabled=*/true, sequences, &second, &check)) {
    return 1;
  }
  check.Finish();
  if (check.diverged()) {
    const sim::EventHasher::Divergence& div = *check.divergence();
    std::fprintf(stderr, "REPLAY DIVERGENCE: event #%llu: %s\n",
                 static_cast<unsigned long long>(div.index),
                 div.description.c_str());
    return 1;
  }
  if (first.hashes != second.hashes) {
    std::fprintf(stderr,
                 "REPLAY DIVERGENCE: identical event stream but "
                 "different read bytes\n");
    return 1;
  }
  std::printf("{\"bench\": \"fetch_sched\", \"mode\": \"replay_check\", "
              "\"replay_events\": %llu, \"replay_digest\": \"%016llx\", "
              "\"pass\": true}\n",
              static_cast<unsigned long long>(check.event_count()),
              static_cast<unsigned long long>(check.digest()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool trace_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
    if (std::strcmp(argv[i], "--trace-only") == 0) {
      trace_only = true;
    }
    if (std::strcmp(argv[i], "--replay-check") == 0) {
      return ReplayCheck();
    }
  }

  const std::vector<int> reader_counts =
      smoke ? std::vector<int>{8} : std::vector<int>{4, 8, 16};
  const int reads_each = smoke ? 6 : 10;

  bool all_pass = true;
  json::Array rows;
  for (int readers : trace_only ? std::vector<int>{} : reader_counts) {
    for (bool hot : {true, false}) {
      const auto sequences = MakeSequences(readers, reads_each, hot);
      ModeResult fifo;
      ModeResult sched;
      if (!RunMode(/*scheduler_enabled=*/false, sequences, &fifo) ||
          !RunMode(/*scheduler_enabled=*/true, sequences, &sched)) {
        return 1;
      }

      const bool bytes_identical = fifo.hashes == sched.hashes;
      const bool gated = readers >= 8 && hot;
      bool cell_pass = bytes_identical;
      if (gated) {
        cell_pass = cell_pass &&
                    sched.loads + sched.unloads <
                        fifo.loads + fifo.unloads &&
                    sched.mean_s < fifo.mean_s &&
                    sched.p99_s < fifo.p99_s;
      }
      all_pass = all_pass && cell_pass;

      json::Object row;
      row["readers"] = json::Value(static_cast<std::int64_t>(readers));
      row["locality"] = json::Value(hot ? "tray_hot" : "uniform");
      row["reads"] = json::Value(
          static_cast<std::int64_t>(readers * reads_each));
      row["fifo"] = ModeJson(fifo);
      row["scheduler"] = ModeJson(sched);
      row["bytes_identical"] = json::Value(bytes_identical);
      row["gated"] = json::Value(gated);
      row["pass"] = json::Value(cell_pass);
      rows.push_back(json::Value(std::move(row)));
      if (!cell_pass) {
        std::fprintf(stderr,
                     "cell failed: readers=%d locality=%s "
                     "(bytes_identical=%d)\n",
                     readers, hot ? "tray_hot" : "uniform",
                     bytes_identical ? 1 : 0);
      }
    }
  }

  json::Array trace_rows;
  for (int readers : reader_counts) {
    TraceResult off;
    TraceResult on;
    if (!RunTrace(/*hints=*/false, readers, &off) ||
        !RunTrace(/*hints=*/true, readers, &on)) {
      return 1;
    }
    const bool bytes_identical = off.hashes == on.hashes;
    const bool no_demand_evictions =
        off.speculative_demand_evictions == 0 &&
        on.speculative_demand_evictions == 0;
    const bool gated = readers >= 8;
    bool cell_pass = bytes_identical && no_demand_evictions;
    if (gated) {
      cell_pass = cell_pass &&
                  on.loads + on.unloads < off.loads + off.unloads &&
                  on.p99_s < off.p99_s;
    }
    all_pass = all_pass && cell_pass;

    json::Object row;
    row["readers"] = json::Value(static_cast<std::int64_t>(readers));
    row["reads"] = json::Value(static_cast<std::int64_t>(
        readers * kTraceFilesPerStream *
        static_cast<int>((kTraceFileSize + kTraceChunk - 1) /
                         kTraceChunk)));
    row["hints_off"] = TraceModeJson(off);
    row["hints_on"] = TraceModeJson(on);
    row["bytes_identical"] = json::Value(bytes_identical);
    row["gated"] = json::Value(gated);
    row["pass"] = json::Value(cell_pass);
    trace_rows.push_back(json::Value(std::move(row)));
    if (!cell_pass) {
      std::fprintf(stderr,
                   "trace cell failed: readers=%d bytes_identical=%d "
                   "cycles(on=%llu off=%llu) p99(on=%g off=%g)\n",
                   readers, bytes_identical ? 1 : 0,
                   static_cast<unsigned long long>(on.loads + on.unloads),
                   static_cast<unsigned long long>(off.loads + off.unloads),
                   on.p99_s, off.p99_s);
    }
  }

  bool scan_pass = true;
  json::Value scan;
  if (!trace_only) {
    scan = ScanResistance(&scan_pass);
    all_pass = all_pass && scan_pass;
  }

  json::Object doc;
  doc["bench"] = json::Value("fetch_sched");
  doc["mode"] = json::Value(smoke ? "smoke" : "full");
  doc["rows"] = json::Value(std::move(rows));
  doc["trace_replay"] = json::Value(std::move(trace_rows));
  if (!trace_only) {
    doc["scan_resistance"] = std::move(scan);
  }
  doc["pass"] = json::Value(all_pass);
  std::printf("%s\n", json::Value(std::move(doc)).DumpPretty().c_str());
  return all_pass ? 0 : 1;
}
