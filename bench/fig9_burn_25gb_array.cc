// Reproduces Figure 9 (§5.4): the aggregate throughput of 12 drives
// burning a 25 GB disc array. Burn starts are staggered while the
// controller stages each image, the aggregate ramps to a peak near
// ~380 MB/s (the shared burn-path cap), and the array completes in
// ~1146 s at an average of ~268 MB/s.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/drive/optical_drive.h"
#include "src/sim/join.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

using namespace ros;

int main() {
  sim::Simulator sim;
  drive::DriveSet set(sim, 0);
  std::vector<std::unique_ptr<drive::Disc>> discs;
  for (int i = 0; i < set.size(); ++i) {
    discs.push_back(std::make_unique<drive::Disc>("d" + std::to_string(i),
                                                  drive::DiscType::kBdr25));
    ROS_CHECK(set.drive(i).InsertDisc(discs.back().get()).ok());
  }

  // The controller paces burn initiation while staging each 25 GB image
  // from the disk buffer (BurnManager::burn_start_interval).
  const sim::Duration kStagger = sim::Seconds(36);

  // Sample the aggregate burn rate once per 10 simulated seconds.
  std::vector<double> samples;
  std::function<void()> sampler = [&] {
    int burning = 0;
    for (int i = 0; i < set.size(); ++i) {
      if (set.drive(i).state() == drive::DriveState::kBurning) {
        ++burning;
      }
    }
    const double desired = set.total_desired_burn_rate();
    const double cap = drive::DriveSet::kBurnBandwidthCap;
    samples.push_back(std::min(desired, cap) / 1e6);
    if (burning > 0 || samples.size() < 5) {
      sim.ScheduleAfter(sim::Seconds(10), sampler);
    }
  };
  sim.ScheduleAfter(sim::Seconds(10), sampler);

  sim::TimePoint t0 = sim.now();
  std::vector<sim::Task<Status>> burns;
  for (int i = 0; i < set.size(); ++i) {
    burns.push_back([](sim::Simulator& s, drive::OpticalDrive* d,
                       sim::Duration delay) -> sim::Task<Status> {
      co_await s.Delay(delay);
      auto result = co_await d->BurnImage("img", 25 * kGB, {});
      if (!result.ok()) {
        co_return result.status();
      }
      co_return OkStatus();
    }(sim, &set.drive(i), i * kStagger));
  }
  Status status = sim.RunUntilComplete(sim::AllOk(sim, std::move(burns)));
  ROS_CHECK(status.ok());
  const double total_seconds = sim::ToSeconds(sim.now() - t0);
  sim.Run();  // drain the sampler

  bench::PrintHeader("Figure 9: 12-drive aggregate 25 GB array burn");
  std::printf("  time(s)   aggregate burn rate (MB/s)\n");
  double peak = 0;
  double sum = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    peak = std::max(peak, samples[i]);
    sum += samples[i];
    if (i % 6 == 0) {  // print one sample per simulated minute
      std::printf("  %7.0f   %8.1f\n", (i + 1) * 10.0, samples[i]);
    }
  }
  const double avg =
      12.0 * BytesToMB(25 * kGB) / total_seconds;

  std::printf("\n");
  bench::PrintRow("total recording time (array)", 1146.0, total_seconds,
                  "s");
  bench::PrintRow("peak aggregate rate", 380.0, peak, "MB/s");
  bench::PrintRow("average aggregate rate", 268.0, avg, "MB/s");
  bench::PrintNote(
      "staggered starts (staging) + the shared burn-path cap shape the curve");
  return 0;
}
