file(REMOVE_RECURSE
  "CMakeFiles/mech_controller_test.dir/mech_controller_test.cc.o"
  "CMakeFiles/mech_controller_test.dir/mech_controller_test.cc.o.d"
  "mech_controller_test"
  "mech_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mech_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
