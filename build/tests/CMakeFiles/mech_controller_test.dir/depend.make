# Empty dependencies file for mech_controller_test.
# This may be replaced when dependencies are built.
