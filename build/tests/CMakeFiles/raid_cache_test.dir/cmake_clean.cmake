file(REMOVE_RECURSE
  "CMakeFiles/raid_cache_test.dir/raid_cache_test.cc.o"
  "CMakeFiles/raid_cache_test.dir/raid_cache_test.cc.o.d"
  "raid_cache_test"
  "raid_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
