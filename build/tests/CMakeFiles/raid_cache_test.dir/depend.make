# Empty dependencies file for raid_cache_test.
# This may be replaced when dependencies are built.
