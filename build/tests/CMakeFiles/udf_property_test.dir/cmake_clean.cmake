file(REMOVE_RECURSE
  "CMakeFiles/udf_property_test.dir/udf_property_test.cc.o"
  "CMakeFiles/udf_property_test.dir/udf_property_test.cc.o.d"
  "udf_property_test"
  "udf_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
