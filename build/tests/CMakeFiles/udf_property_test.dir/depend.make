# Empty dependencies file for udf_property_test.
# This may be replaced when dependencies are built.
