file(REMOVE_RECURSE
  "CMakeFiles/endurance_test.dir/endurance_test.cc.o"
  "CMakeFiles/endurance_test.dir/endurance_test.cc.o.d"
  "endurance_test"
  "endurance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endurance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
