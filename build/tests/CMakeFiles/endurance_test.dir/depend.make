# Empty dependencies file for endurance_test.
# This may be replaced when dependencies are built.
