file(REMOVE_RECURSE
  "CMakeFiles/udf_image_test.dir/udf_image_test.cc.o"
  "CMakeFiles/udf_image_test.dir/udf_image_test.cc.o.d"
  "udf_image_test"
  "udf_image_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
