# Empty compiler generated dependencies file for udf_image_test.
# This may be replaced when dependencies are built.
