# Empty dependencies file for optical_drive_test.
# This may be replaced when dependencies are built.
