file(REMOVE_RECURSE
  "CMakeFiles/optical_drive_test.dir/optical_drive_test.cc.o"
  "CMakeFiles/optical_drive_test.dir/optical_drive_test.cc.o.d"
  "optical_drive_test"
  "optical_drive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_drive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
