file(REMOVE_RECURSE
  "CMakeFiles/background_policy_test.dir/background_policy_test.cc.o"
  "CMakeFiles/background_policy_test.dir/background_policy_test.cc.o.d"
  "background_policy_test"
  "background_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
