# Empty dependencies file for background_policy_test.
# This may be replaced when dependencies are built.
