# Empty dependencies file for drive_set_test.
# This may be replaced when dependencies are built.
