file(REMOVE_RECURSE
  "CMakeFiles/drive_set_test.dir/drive_set_test.cc.o"
  "CMakeFiles/drive_set_test.dir/drive_set_test.cc.o.d"
  "drive_set_test"
  "drive_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
