# Empty dependencies file for speed_profile_test.
# This may be replaced when dependencies are built.
