file(REMOVE_RECURSE
  "CMakeFiles/speed_profile_test.dir/speed_profile_test.cc.o"
  "CMakeFiles/speed_profile_test.dir/speed_profile_test.cc.o.d"
  "speed_profile_test"
  "speed_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
