file(REMOVE_RECURSE
  "CMakeFiles/mech_library_test.dir/mech_library_test.cc.o"
  "CMakeFiles/mech_library_test.dir/mech_library_test.cc.o.d"
  "mech_library_test"
  "mech_library_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mech_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
