# Empty compiler generated dependencies file for mech_library_test.
# This may be replaced when dependencies are built.
