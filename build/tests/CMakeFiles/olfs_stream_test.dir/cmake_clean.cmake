file(REMOVE_RECURSE
  "CMakeFiles/olfs_stream_test.dir/olfs_stream_test.cc.o"
  "CMakeFiles/olfs_stream_test.dir/olfs_stream_test.cc.o.d"
  "olfs_stream_test"
  "olfs_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olfs_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
