# Empty dependencies file for olfs_stream_test.
# This may be replaced when dependencies are built.
