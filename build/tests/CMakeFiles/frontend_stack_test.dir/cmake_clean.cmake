file(REMOVE_RECURSE
  "CMakeFiles/frontend_stack_test.dir/frontend_stack_test.cc.o"
  "CMakeFiles/frontend_stack_test.dir/frontend_stack_test.cc.o.d"
  "frontend_stack_test"
  "frontend_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
