# Empty compiler generated dependencies file for frontend_stack_test.
# This may be replaced when dependencies are built.
