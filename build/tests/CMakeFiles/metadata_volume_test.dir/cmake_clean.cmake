file(REMOVE_RECURSE
  "CMakeFiles/metadata_volume_test.dir/metadata_volume_test.cc.o"
  "CMakeFiles/metadata_volume_test.dir/metadata_volume_test.cc.o.d"
  "metadata_volume_test"
  "metadata_volume_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
