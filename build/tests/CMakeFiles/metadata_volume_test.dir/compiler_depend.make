# Empty compiler generated dependencies file for metadata_volume_test.
# This may be replaced when dependencies are built.
