file(REMOVE_RECURSE
  "CMakeFiles/fetch_concurrency_test.dir/fetch_concurrency_test.cc.o"
  "CMakeFiles/fetch_concurrency_test.dir/fetch_concurrency_test.cc.o.d"
  "fetch_concurrency_test"
  "fetch_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
