file(REMOVE_RECURSE
  "CMakeFiles/frontend_extra_test.dir/frontend_extra_test.cc.o"
  "CMakeFiles/frontend_extra_test.dir/frontend_extra_test.cc.o.d"
  "frontend_extra_test"
  "frontend_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
