# Empty dependencies file for buffer_lifecycle_test.
# This may be replaced when dependencies are built.
