file(REMOVE_RECURSE
  "CMakeFiles/buffer_lifecycle_test.dir/buffer_lifecycle_test.cc.o"
  "CMakeFiles/buffer_lifecycle_test.dir/buffer_lifecycle_test.cc.o.d"
  "buffer_lifecycle_test"
  "buffer_lifecycle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
