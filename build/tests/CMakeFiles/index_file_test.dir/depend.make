# Empty dependencies file for index_file_test.
# This may be replaced when dependencies are built.
