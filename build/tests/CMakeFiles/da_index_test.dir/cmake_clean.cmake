file(REMOVE_RECURSE
  "CMakeFiles/da_index_test.dir/da_index_test.cc.o"
  "CMakeFiles/da_index_test.dir/da_index_test.cc.o.d"
  "da_index_test"
  "da_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
