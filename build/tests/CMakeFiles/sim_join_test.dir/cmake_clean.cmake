file(REMOVE_RECURSE
  "CMakeFiles/sim_join_test.dir/sim_join_test.cc.o"
  "CMakeFiles/sim_join_test.dir/sim_join_test.cc.o.d"
  "sim_join_test"
  "sim_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
