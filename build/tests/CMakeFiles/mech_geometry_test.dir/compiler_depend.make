# Empty compiler generated dependencies file for mech_geometry_test.
# This may be replaced when dependencies are built.
