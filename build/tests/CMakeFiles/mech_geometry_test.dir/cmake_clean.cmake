file(REMOVE_RECURSE
  "CMakeFiles/mech_geometry_test.dir/mech_geometry_test.cc.o"
  "CMakeFiles/mech_geometry_test.dir/mech_geometry_test.cc.o.d"
  "mech_geometry_test"
  "mech_geometry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mech_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
