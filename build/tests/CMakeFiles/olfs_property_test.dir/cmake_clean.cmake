file(REMOVE_RECURSE
  "CMakeFiles/olfs_property_test.dir/olfs_property_test.cc.o"
  "CMakeFiles/olfs_property_test.dir/olfs_property_test.cc.o.d"
  "olfs_property_test"
  "olfs_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olfs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
