# Empty compiler generated dependencies file for olfs_property_test.
# This may be replaced when dependencies are built.
