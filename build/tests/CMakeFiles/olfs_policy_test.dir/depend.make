# Empty dependencies file for olfs_policy_test.
# This may be replaced when dependencies are built.
