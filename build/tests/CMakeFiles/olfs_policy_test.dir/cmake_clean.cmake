file(REMOVE_RECURSE
  "CMakeFiles/olfs_policy_test.dir/olfs_policy_test.cc.o"
  "CMakeFiles/olfs_policy_test.dir/olfs_policy_test.cc.o.d"
  "olfs_policy_test"
  "olfs_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olfs_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
