file(REMOVE_RECURSE
  "CMakeFiles/olfs_test.dir/olfs_test.cc.o"
  "CMakeFiles/olfs_test.dir/olfs_test.cc.o.d"
  "olfs_test"
  "olfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
