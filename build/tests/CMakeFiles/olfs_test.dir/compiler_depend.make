# Empty compiler generated dependencies file for olfs_test.
# This may be replaced when dependencies are built.
