file(REMOVE_RECURSE
  "CMakeFiles/udf_serializer_test.dir/udf_serializer_test.cc.o"
  "CMakeFiles/udf_serializer_test.dir/udf_serializer_test.cc.o.d"
  "udf_serializer_test"
  "udf_serializer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_serializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
