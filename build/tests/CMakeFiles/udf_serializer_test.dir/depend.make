# Empty dependencies file for udf_serializer_test.
# This may be replaced when dependencies are built.
