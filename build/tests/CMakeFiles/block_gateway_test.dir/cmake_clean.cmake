file(REMOVE_RECURSE
  "CMakeFiles/block_gateway_test.dir/block_gateway_test.cc.o"
  "CMakeFiles/block_gateway_test.dir/block_gateway_test.cc.o.d"
  "block_gateway_test"
  "block_gateway_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_gateway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
