file(REMOVE_RECURSE
  "CMakeFiles/nas_server_test.dir/nas_server_test.cc.o"
  "CMakeFiles/nas_server_test.dir/nas_server_test.cc.o.d"
  "nas_server_test"
  "nas_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
