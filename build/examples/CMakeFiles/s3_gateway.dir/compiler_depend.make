# Empty compiler generated dependencies file for s3_gateway.
# This may be replaced when dependencies are built.
