file(REMOVE_RECURSE
  "CMakeFiles/s3_gateway.dir/s3_gateway.cpp.o"
  "CMakeFiles/s3_gateway.dir/s3_gateway.cpp.o.d"
  "s3_gateway"
  "s3_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
