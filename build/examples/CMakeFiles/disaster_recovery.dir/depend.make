# Empty dependencies file for disaster_recovery.
# This may be replaced when dependencies are built.
