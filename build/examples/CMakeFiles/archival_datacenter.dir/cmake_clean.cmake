file(REMOVE_RECURSE
  "CMakeFiles/archival_datacenter.dir/archival_datacenter.cpp.o"
  "CMakeFiles/archival_datacenter.dir/archival_datacenter.cpp.o.d"
  "archival_datacenter"
  "archival_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archival_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
