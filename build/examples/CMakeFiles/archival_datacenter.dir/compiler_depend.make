# Empty compiler generated dependencies file for archival_datacenter.
# This may be replaced when dependencies are built.
