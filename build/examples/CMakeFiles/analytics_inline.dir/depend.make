# Empty dependencies file for analytics_inline.
# This may be replaced when dependencies are built.
