file(REMOVE_RECURSE
  "CMakeFiles/analytics_inline.dir/analytics_inline.cpp.o"
  "CMakeFiles/analytics_inline.dir/analytics_inline.cpp.o.d"
  "analytics_inline"
  "analytics_inline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
