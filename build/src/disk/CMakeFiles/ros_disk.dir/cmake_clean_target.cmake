file(REMOVE_RECURSE
  "libros_disk.a"
)
