file(REMOVE_RECURSE
  "CMakeFiles/ros_disk.dir/block_device.cc.o"
  "CMakeFiles/ros_disk.dir/block_device.cc.o.d"
  "CMakeFiles/ros_disk.dir/raid.cc.o"
  "CMakeFiles/ros_disk.dir/raid.cc.o.d"
  "CMakeFiles/ros_disk.dir/volume.cc.o"
  "CMakeFiles/ros_disk.dir/volume.cc.o.d"
  "libros_disk.a"
  "libros_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
