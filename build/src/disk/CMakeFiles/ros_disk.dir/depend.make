# Empty dependencies file for ros_disk.
# This may be replaced when dependencies are built.
