file(REMOVE_RECURSE
  "libros_frontend.a"
)
