file(REMOVE_RECURSE
  "CMakeFiles/ros_frontend.dir/block_gateway.cc.o"
  "CMakeFiles/ros_frontend.dir/block_gateway.cc.o.d"
  "CMakeFiles/ros_frontend.dir/nas_server.cc.o"
  "CMakeFiles/ros_frontend.dir/nas_server.cc.o.d"
  "CMakeFiles/ros_frontend.dir/object_store.cc.o"
  "CMakeFiles/ros_frontend.dir/object_store.cc.o.d"
  "CMakeFiles/ros_frontend.dir/stack.cc.o"
  "CMakeFiles/ros_frontend.dir/stack.cc.o.d"
  "libros_frontend.a"
  "libros_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
