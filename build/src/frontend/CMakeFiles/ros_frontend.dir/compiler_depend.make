# Empty compiler generated dependencies file for ros_frontend.
# This may be replaced when dependencies are built.
