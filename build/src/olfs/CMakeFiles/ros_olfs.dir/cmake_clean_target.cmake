file(REMOVE_RECURSE
  "libros_olfs.a"
)
