
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/olfs/bucket_manager.cc" "src/olfs/CMakeFiles/ros_olfs.dir/bucket_manager.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/bucket_manager.cc.o.d"
  "/root/repo/src/olfs/burn_manager.cc" "src/olfs/CMakeFiles/ros_olfs.dir/burn_manager.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/burn_manager.cc.o.d"
  "/root/repo/src/olfs/disc_image_store.cc" "src/olfs/CMakeFiles/ros_olfs.dir/disc_image_store.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/disc_image_store.cc.o.d"
  "/root/repo/src/olfs/fetch_manager.cc" "src/olfs/CMakeFiles/ros_olfs.dir/fetch_manager.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/fetch_manager.cc.o.d"
  "/root/repo/src/olfs/index_file.cc" "src/olfs/CMakeFiles/ros_olfs.dir/index_file.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/index_file.cc.o.d"
  "/root/repo/src/olfs/maintenance.cc" "src/olfs/CMakeFiles/ros_olfs.dir/maintenance.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/maintenance.cc.o.d"
  "/root/repo/src/olfs/mech_controller.cc" "src/olfs/CMakeFiles/ros_olfs.dir/mech_controller.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/mech_controller.cc.o.d"
  "/root/repo/src/olfs/metadata_volume.cc" "src/olfs/CMakeFiles/ros_olfs.dir/metadata_volume.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/metadata_volume.cc.o.d"
  "/root/repo/src/olfs/olfs.cc" "src/olfs/CMakeFiles/ros_olfs.dir/olfs.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/olfs.cc.o.d"
  "/root/repo/src/olfs/parity.cc" "src/olfs/CMakeFiles/ros_olfs.dir/parity.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/parity.cc.o.d"
  "/root/repo/src/olfs/read_cache.cc" "src/olfs/CMakeFiles/ros_olfs.dir/read_cache.cc.o" "gcc" "src/olfs/CMakeFiles/ros_olfs.dir/read_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ros_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mech/CMakeFiles/ros_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/drive/CMakeFiles/ros_drive.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/ros_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/ros_udf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
