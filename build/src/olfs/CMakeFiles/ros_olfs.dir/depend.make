# Empty dependencies file for ros_olfs.
# This may be replaced when dependencies are built.
