file(REMOVE_RECURSE
  "CMakeFiles/ros_olfs.dir/bucket_manager.cc.o"
  "CMakeFiles/ros_olfs.dir/bucket_manager.cc.o.d"
  "CMakeFiles/ros_olfs.dir/burn_manager.cc.o"
  "CMakeFiles/ros_olfs.dir/burn_manager.cc.o.d"
  "CMakeFiles/ros_olfs.dir/disc_image_store.cc.o"
  "CMakeFiles/ros_olfs.dir/disc_image_store.cc.o.d"
  "CMakeFiles/ros_olfs.dir/fetch_manager.cc.o"
  "CMakeFiles/ros_olfs.dir/fetch_manager.cc.o.d"
  "CMakeFiles/ros_olfs.dir/index_file.cc.o"
  "CMakeFiles/ros_olfs.dir/index_file.cc.o.d"
  "CMakeFiles/ros_olfs.dir/maintenance.cc.o"
  "CMakeFiles/ros_olfs.dir/maintenance.cc.o.d"
  "CMakeFiles/ros_olfs.dir/mech_controller.cc.o"
  "CMakeFiles/ros_olfs.dir/mech_controller.cc.o.d"
  "CMakeFiles/ros_olfs.dir/metadata_volume.cc.o"
  "CMakeFiles/ros_olfs.dir/metadata_volume.cc.o.d"
  "CMakeFiles/ros_olfs.dir/olfs.cc.o"
  "CMakeFiles/ros_olfs.dir/olfs.cc.o.d"
  "CMakeFiles/ros_olfs.dir/parity.cc.o"
  "CMakeFiles/ros_olfs.dir/parity.cc.o.d"
  "CMakeFiles/ros_olfs.dir/read_cache.cc.o"
  "CMakeFiles/ros_olfs.dir/read_cache.cc.o.d"
  "libros_olfs.a"
  "libros_olfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_olfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
