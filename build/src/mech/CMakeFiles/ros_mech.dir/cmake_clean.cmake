file(REMOVE_RECURSE
  "CMakeFiles/ros_mech.dir/library.cc.o"
  "CMakeFiles/ros_mech.dir/library.cc.o.d"
  "CMakeFiles/ros_mech.dir/plc.cc.o"
  "CMakeFiles/ros_mech.dir/plc.cc.o.d"
  "libros_mech.a"
  "libros_mech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_mech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
