
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mech/library.cc" "src/mech/CMakeFiles/ros_mech.dir/library.cc.o" "gcc" "src/mech/CMakeFiles/ros_mech.dir/library.cc.o.d"
  "/root/repo/src/mech/plc.cc" "src/mech/CMakeFiles/ros_mech.dir/plc.cc.o" "gcc" "src/mech/CMakeFiles/ros_mech.dir/plc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ros_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
