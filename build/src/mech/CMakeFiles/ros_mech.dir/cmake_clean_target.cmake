file(REMOVE_RECURSE
  "libros_mech.a"
)
