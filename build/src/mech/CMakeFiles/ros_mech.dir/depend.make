# Empty dependencies file for ros_mech.
# This may be replaced when dependencies are built.
