# Empty dependencies file for ros_udf.
# This may be replaced when dependencies are built.
