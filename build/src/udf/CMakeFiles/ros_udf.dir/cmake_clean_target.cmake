file(REMOVE_RECURSE
  "libros_udf.a"
)
