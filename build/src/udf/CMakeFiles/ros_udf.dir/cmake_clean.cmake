file(REMOVE_RECURSE
  "CMakeFiles/ros_udf.dir/image.cc.o"
  "CMakeFiles/ros_udf.dir/image.cc.o.d"
  "CMakeFiles/ros_udf.dir/serializer.cc.o"
  "CMakeFiles/ros_udf.dir/serializer.cc.o.d"
  "libros_udf.a"
  "libros_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
