# Empty dependencies file for ros_workload.
# This may be replaced when dependencies are built.
