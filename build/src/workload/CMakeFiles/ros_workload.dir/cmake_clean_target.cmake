file(REMOVE_RECURSE
  "libros_workload.a"
)
