file(REMOVE_RECURSE
  "CMakeFiles/ros_workload.dir/filebench.cc.o"
  "CMakeFiles/ros_workload.dir/filebench.cc.o.d"
  "CMakeFiles/ros_workload.dir/tco.cc.o"
  "CMakeFiles/ros_workload.dir/tco.cc.o.d"
  "libros_workload.a"
  "libros_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
