file(REMOVE_RECURSE
  "CMakeFiles/ros_common.dir/json.cc.o"
  "CMakeFiles/ros_common.dir/json.cc.o.d"
  "CMakeFiles/ros_common.dir/logging.cc.o"
  "CMakeFiles/ros_common.dir/logging.cc.o.d"
  "libros_common.a"
  "libros_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
