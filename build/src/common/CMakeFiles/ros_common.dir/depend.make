# Empty dependencies file for ros_common.
# This may be replaced when dependencies are built.
