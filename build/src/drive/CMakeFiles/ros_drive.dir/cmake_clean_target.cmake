file(REMOVE_RECURSE
  "libros_drive.a"
)
