file(REMOVE_RECURSE
  "CMakeFiles/ros_drive.dir/disc.cc.o"
  "CMakeFiles/ros_drive.dir/disc.cc.o.d"
  "CMakeFiles/ros_drive.dir/optical_drive.cc.o"
  "CMakeFiles/ros_drive.dir/optical_drive.cc.o.d"
  "CMakeFiles/ros_drive.dir/speed_profile.cc.o"
  "CMakeFiles/ros_drive.dir/speed_profile.cc.o.d"
  "libros_drive.a"
  "libros_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
