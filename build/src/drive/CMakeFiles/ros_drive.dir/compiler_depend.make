# Empty compiler generated dependencies file for ros_drive.
# This may be replaced when dependencies are built.
