
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drive/disc.cc" "src/drive/CMakeFiles/ros_drive.dir/disc.cc.o" "gcc" "src/drive/CMakeFiles/ros_drive.dir/disc.cc.o.d"
  "/root/repo/src/drive/optical_drive.cc" "src/drive/CMakeFiles/ros_drive.dir/optical_drive.cc.o" "gcc" "src/drive/CMakeFiles/ros_drive.dir/optical_drive.cc.o.d"
  "/root/repo/src/drive/speed_profile.cc" "src/drive/CMakeFiles/ros_drive.dir/speed_profile.cc.o" "gcc" "src/drive/CMakeFiles/ros_drive.dir/speed_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ros_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
