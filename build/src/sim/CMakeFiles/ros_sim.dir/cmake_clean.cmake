file(REMOVE_RECURSE
  "CMakeFiles/ros_sim.dir/simulator.cc.o"
  "CMakeFiles/ros_sim.dir/simulator.cc.o.d"
  "libros_sim.a"
  "libros_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
