# Empty compiler generated dependencies file for ros_sim.
# This may be replaced when dependencies are built.
