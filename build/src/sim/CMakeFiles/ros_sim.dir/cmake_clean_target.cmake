file(REMOVE_RECURSE
  "libros_sim.a"
)
