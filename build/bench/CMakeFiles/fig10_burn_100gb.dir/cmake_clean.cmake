file(REMOVE_RECURSE
  "CMakeFiles/fig10_burn_100gb.dir/fig10_burn_100gb.cc.o"
  "CMakeFiles/fig10_burn_100gb.dir/fig10_burn_100gb.cc.o.d"
  "fig10_burn_100gb"
  "fig10_burn_100gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_burn_100gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
