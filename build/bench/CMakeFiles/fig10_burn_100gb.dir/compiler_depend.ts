# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_burn_100gb.
