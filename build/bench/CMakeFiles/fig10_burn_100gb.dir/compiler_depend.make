# Empty compiler generated dependencies file for fig10_burn_100gb.
# This may be replaced when dependencies are built.
