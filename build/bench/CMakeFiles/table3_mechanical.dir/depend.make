# Empty dependencies file for table3_mechanical.
# This may be replaced when dependencies are built.
