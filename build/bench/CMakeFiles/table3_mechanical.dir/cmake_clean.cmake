file(REMOVE_RECURSE
  "CMakeFiles/table3_mechanical.dir/table3_mechanical.cc.o"
  "CMakeFiles/table3_mechanical.dir/table3_mechanical.cc.o.d"
  "table3_mechanical"
  "table3_mechanical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mechanical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
