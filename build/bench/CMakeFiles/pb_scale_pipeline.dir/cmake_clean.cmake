file(REMOVE_RECURSE
  "CMakeFiles/pb_scale_pipeline.dir/pb_scale_pipeline.cc.o"
  "CMakeFiles/pb_scale_pipeline.dir/pb_scale_pipeline.cc.o.d"
  "pb_scale_pipeline"
  "pb_scale_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_scale_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
