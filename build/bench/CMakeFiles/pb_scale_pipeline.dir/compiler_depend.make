# Empty compiler generated dependencies file for pb_scale_pipeline.
# This may be replaced when dependencies are built.
