# Empty dependencies file for mv_recovery.
# This may be replaced when dependencies are built.
