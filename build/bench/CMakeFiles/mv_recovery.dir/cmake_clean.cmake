file(REMOVE_RECURSE
  "CMakeFiles/mv_recovery.dir/mv_recovery.cc.o"
  "CMakeFiles/mv_recovery.dir/mv_recovery.cc.o.d"
  "mv_recovery"
  "mv_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
