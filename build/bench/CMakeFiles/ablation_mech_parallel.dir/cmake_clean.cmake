file(REMOVE_RECURSE
  "CMakeFiles/ablation_mech_parallel.dir/ablation_mech_parallel.cc.o"
  "CMakeFiles/ablation_mech_parallel.dir/ablation_mech_parallel.cc.o.d"
  "ablation_mech_parallel"
  "ablation_mech_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mech_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
