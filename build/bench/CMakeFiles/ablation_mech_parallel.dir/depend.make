# Empty dependencies file for ablation_mech_parallel.
# This may be replaced when dependencies are built.
