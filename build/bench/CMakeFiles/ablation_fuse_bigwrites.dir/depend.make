# Empty dependencies file for ablation_fuse_bigwrites.
# This may be replaced when dependencies are built.
