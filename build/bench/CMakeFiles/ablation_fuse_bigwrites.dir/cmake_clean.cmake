file(REMOVE_RECURSE
  "CMakeFiles/ablation_fuse_bigwrites.dir/ablation_fuse_bigwrites.cc.o"
  "CMakeFiles/ablation_fuse_bigwrites.dir/ablation_fuse_bigwrites.cc.o.d"
  "ablation_fuse_bigwrites"
  "ablation_fuse_bigwrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fuse_bigwrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
