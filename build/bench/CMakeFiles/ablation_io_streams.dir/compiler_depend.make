# Empty compiler generated dependencies file for ablation_io_streams.
# This may be replaced when dependencies are built.
