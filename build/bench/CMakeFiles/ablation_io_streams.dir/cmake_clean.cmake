file(REMOVE_RECURSE
  "CMakeFiles/ablation_io_streams.dir/ablation_io_streams.cc.o"
  "CMakeFiles/ablation_io_streams.dir/ablation_io_streams.cc.o.d"
  "ablation_io_streams"
  "ablation_io_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_io_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
