
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_io_streams.cc" "bench/CMakeFiles/ablation_io_streams.dir/ablation_io_streams.cc.o" "gcc" "bench/CMakeFiles/ablation_io_streams.dir/ablation_io_streams.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/ros_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ros_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/olfs/CMakeFiles/ros_olfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mech/CMakeFiles/ros_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/drive/CMakeFiles/ros_drive.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/ros_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ros_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/ros_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
