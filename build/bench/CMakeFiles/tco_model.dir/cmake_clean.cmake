file(REMOVE_RECURSE
  "CMakeFiles/tco_model.dir/tco_model.cc.o"
  "CMakeFiles/tco_model.dir/tco_model.cc.o.d"
  "tco_model"
  "tco_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tco_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
