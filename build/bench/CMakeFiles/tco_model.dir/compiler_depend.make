# Empty compiler generated dependencies file for tco_model.
# This may be replaced when dependencies are built.
