# Empty dependencies file for fig6_stack_throughput.
# This may be replaced when dependencies are built.
