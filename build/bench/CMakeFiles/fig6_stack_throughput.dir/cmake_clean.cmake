file(REMOVE_RECURSE
  "CMakeFiles/fig6_stack_throughput.dir/fig6_stack_throughput.cc.o"
  "CMakeFiles/fig6_stack_throughput.dir/fig6_stack_throughput.cc.o.d"
  "fig6_stack_throughput"
  "fig6_stack_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_stack_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
