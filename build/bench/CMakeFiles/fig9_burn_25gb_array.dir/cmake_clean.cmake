file(REMOVE_RECURSE
  "CMakeFiles/fig9_burn_25gb_array.dir/fig9_burn_25gb_array.cc.o"
  "CMakeFiles/fig9_burn_25gb_array.dir/fig9_burn_25gb_array.cc.o.d"
  "fig9_burn_25gb_array"
  "fig9_burn_25gb_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_burn_25gb_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
