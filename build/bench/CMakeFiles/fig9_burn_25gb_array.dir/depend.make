# Empty dependencies file for fig9_burn_25gb_array.
# This may be replaced when dependencies are built.
