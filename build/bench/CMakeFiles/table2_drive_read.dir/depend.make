# Empty dependencies file for table2_drive_read.
# This may be replaced when dependencies are built.
