file(REMOVE_RECURSE
  "CMakeFiles/table2_drive_read.dir/table2_drive_read.cc.o"
  "CMakeFiles/table2_drive_read.dir/table2_drive_read.cc.o.d"
  "table2_drive_read"
  "table2_drive_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_drive_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
