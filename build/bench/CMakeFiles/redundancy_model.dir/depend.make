# Empty dependencies file for redundancy_model.
# This may be replaced when dependencies are built.
