file(REMOVE_RECURSE
  "CMakeFiles/redundancy_model.dir/redundancy_model.cc.o"
  "CMakeFiles/redundancy_model.dir/redundancy_model.cc.o.d"
  "redundancy_model"
  "redundancy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundancy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
