# Empty compiler generated dependencies file for fig8_burn_25gb_single.
# This may be replaced when dependencies are built.
