file(REMOVE_RECURSE
  "CMakeFiles/fig8_burn_25gb_single.dir/fig8_burn_25gb_single.cc.o"
  "CMakeFiles/fig8_burn_25gb_single.dir/fig8_burn_25gb_single.cc.o.d"
  "fig8_burn_25gb_single"
  "fig8_burn_25gb_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_burn_25gb_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
